package serve

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dnnd/internal/obs"
)

// Hist is the shared log-bucketed histogram (promoted to internal/obs
// so every subsystem — serve, bench, the debug listener — speaks one
// implementation and one dump format). The alias keeps the serve API
// and tests unchanged.
type Hist = obs.Hist

// Metrics is the server's observability surface: monotonic counters,
// instantaneous gauges (closures, sampled at dump time), and latency /
// batch-size histograms. All fields are safe for concurrent use.
type Metrics struct {
	// Admission counters.
	Accepted          atomic.Int64 // admitted into the queue
	RejectedOverload  atomic.Int64 // typed overload rejections (queue full)
	RejectedDraining  atomic.Int64 // typed rejections during drain
	RejectedBad       atomic.Int64 // malformed queries
	DeadlineDropped   atomic.Int64 // expired while queued, dropped pre-exec
	DeadlineTruncated atomic.Int64 // deadline hit mid-traversal (partial reply)
	CompletedOK       atomic.Int64 // full answers
	Completed         atomic.Int64 // all admitted requests replied (any status)
	WriteErrors       atomic.Int64 // replies lost to dead client connections

	// Work counters.
	DistEvals   atomic.Int64
	ApproxEvals atomic.Int64 // quantized code-distance evaluations
	Batches     atomic.Int64
	WarmServed  atomic.Int64 // queries that used the warm entry cache

	// Endpoint counters (non-query ops).
	Hellos, StatsDumps, HealthProbes atomic.Int64

	// Mutation counters (mutable servers; all zero on frozen ones).
	IngestOps        atomic.Int64 // SIngest frames handled
	DeleteOps        atomic.Int64 // SDelete frames handled
	FlushOps         atomic.Int64 // SFlush frames handled
	Ingested         atomic.Int64 // vectors appended to the delta
	Tombstoned       atomic.Int64 // IDs newly tombstoned
	Refines          atomic.Int64 // snapshots published by the refiner
	RefineErrors     atomic.Int64 // refinements that failed (snapshot kept)
	RejectedReadOnly atomic.Int64 // mutations against a frozen server
	MutLogErrors     atomic.Int64 // durability hook failures (non-fatal)

	// Gauges.
	InFlight      atomic.Int64 // admitted, not yet replied
	Conns         atomic.Int64
	ConnsTotal    atomic.Int64
	QueueMax      atomic.Int64  // high-water queue depth (summed over lanes)
	QueueDepth    func() int    // instantaneous, sampled at dump time
	QueueCap      int           //
	WarmCacheSize func() int    //
	Gen           func() uint64 // published snapshot generation (mutable servers)
	PendingDelta  func() int    // ingested rows not yet refined into the graph

	// Lanes holds one entry per dispatch lane (filled by New), dumped
	// as dnnd_serve_lane_* samples with a lane label so skew across
	// lanes — uneven batches, a backed-up shard — is visible.
	Lanes []LaneStat

	// Histograms (latencies in microseconds).
	LatTotal  Hist // admission to reply written
	LatQueue  Hist // admission to execution start
	LatExec   Hist // execution only
	BatchSize Hist // requests per executed micro-batch

	regOnce sync.Once
	reg     *obs.Registry
}

// LaneStat is one dispatch lane's share of the counters plus its
// queue-shard depth gauge.
type LaneStat struct {
	Batches atomic.Int64 // micro-batches executed by this lane
	Queries atomic.Int64 // queries executed (post deadline-drop)
	Depth   func() int   // instantaneous shard queue depth
}

// Registry lazily builds (once) the obs.Registry view of these
// metrics, with every counter, gauge, and histogram registered under
// its dnnd_serve_* name in the dump order the stats endpoint has
// always used. The same registry backs Dump, the wire-protocol stats
// op, and the debug listener's /metrics endpoints. Call it after the
// gauge closures (QueueDepth, WarmCacheSize) are assigned — i.e. any
// time after New returns.
func (m *Metrics) Registry() *obs.Registry {
	m.regOnce.Do(func() {
		r := obs.NewRegistry()
		for _, sc := range []struct {
			status string
			c      *atomic.Int64
		}{
			{"ok", &m.CompletedOK},
			{"partial", &m.DeadlineTruncated},
			{"deadline", &m.DeadlineDropped},
			{"overloaded", &m.RejectedOverload},
			{"draining", &m.RejectedDraining},
			{"bad_request", &m.RejectedBad},
		} {
			r.Sample(fmt.Sprintf("dnnd_serve_queries_total{status=%q}", sc.status), sc.c.Load)
		}
		r.Sample("dnnd_serve_accepted_total", m.Accepted.Load)
		r.Sample("dnnd_serve_completed_total", m.Completed.Load)
		r.Sample("dnnd_serve_write_errors_total", m.WriteErrors.Load)
		r.Sample("dnnd_serve_dist_evals_total", m.DistEvals.Load)
		r.Sample("dnnd_serve_approx_evals_total", m.ApproxEvals.Load)
		r.Sample("dnnd_serve_batches_total", m.Batches.Load)
		r.Sample("dnnd_serve_warm_served_total", m.WarmServed.Load)
		r.Sample("dnnd_serve_hello_total", m.Hellos.Load)
		r.Sample("dnnd_serve_stats_total", m.StatsDumps.Load)
		r.Sample("dnnd_serve_health_total", m.HealthProbes.Load)
		r.Sample("dnnd_serve_inflight", m.InFlight.Load)
		r.Sample("dnnd_serve_connections", m.Conns.Load)
		r.Sample("dnnd_serve_connections_total", m.ConnsTotal.Load)
		if m.QueueDepth != nil {
			r.Sample("dnnd_serve_queue_depth", func() int64 { return int64(m.QueueDepth()) })
		}
		r.Sample("dnnd_serve_queue_depth_max", m.QueueMax.Load)
		r.Sample("dnnd_serve_queue_cap", func() int64 { return int64(m.QueueCap) })
		if m.WarmCacheSize != nil {
			r.Sample("dnnd_serve_warm_cache_size", func() int64 { return int64(m.WarmCacheSize()) })
		}
		r.Sample("dnnd_serve_ingest_ops_total", m.IngestOps.Load)
		r.Sample("dnnd_serve_delete_ops_total", m.DeleteOps.Load)
		r.Sample("dnnd_serve_flush_ops_total", m.FlushOps.Load)
		r.Sample("dnnd_serve_ingested_total", m.Ingested.Load)
		r.Sample("dnnd_serve_tombstoned_total", m.Tombstoned.Load)
		r.Sample("dnnd_serve_refines_total", m.Refines.Load)
		r.Sample("dnnd_serve_refine_errors_total", m.RefineErrors.Load)
		r.Sample("dnnd_serve_rejected_read_only_total", m.RejectedReadOnly.Load)
		r.Sample("dnnd_serve_mutlog_errors_total", m.MutLogErrors.Load)
		if m.Gen != nil {
			r.Sample("dnnd_serve_generation", func() int64 { return int64(m.Gen()) })
		}
		if m.PendingDelta != nil {
			r.Sample("dnnd_serve_pending_delta", func() int64 { return int64(m.PendingDelta()) })
		}
		for i := range m.Lanes {
			ls := &m.Lanes[i]
			r.Sample(fmt.Sprintf("dnnd_serve_lane_batches_total{lane=\"%d\"}", i), ls.Batches.Load)
			r.Sample(fmt.Sprintf("dnnd_serve_lane_queries_total{lane=\"%d\"}", i), ls.Queries.Load)
			if ls.Depth != nil {
				depth := ls.Depth
				r.Sample(fmt.Sprintf("dnnd_serve_lane_queue_depth{lane=\"%d\"}", i),
					func() int64 { return int64(depth()) })
			}
		}
		// Allocator pressure: the whole point of the pooled-context hot
		// path is that these stay flat under load. Sampled at dump time
		// (one ReadMemStats per gauge read; dumps are rare).
		r.Sample("dnnd_serve_gc_cycles_total", func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.NumGC)
		})
		r.Sample("dnnd_serve_mallocs_total", func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.Mallocs)
		})
		r.Sample("dnnd_serve_heap_alloc_bytes", func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.HeapAlloc)
		})
		r.RegisterHist("dnnd_serve_latency_usec", &m.LatTotal)
		r.RegisterHist("dnnd_serve_queue_wait_usec", &m.LatQueue)
		r.RegisterHist("dnnd_serve_exec_usec", &m.LatExec)
		r.RegisterHist("dnnd_serve_batch_size", &m.BatchSize)
		m.reg = r
	})
	return m.reg
}

// Dump renders the metrics in a /metrics-style plain-text format: one
// `name{labels} value` line per sample, floats for quantiles,
// integers for counters and gauges — the obs.Registry text format.
func (m *Metrics) Dump() string {
	return m.Registry().DumpString()
}

// quantiles computes exact client-side quantiles from a latency sample
// (shared by the load generator's report; lives here so the server
// tests can reuse it).
func quantiles(us []float64) (p50, p90, p95, p99, mean, max float64) {
	if len(us) == 0 {
		return
	}
	sorted := append([]float64(nil), us...)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return at(0.5), at(0.9), at(0.95), at(0.99), sum / float64(len(sorted)), sorted[len(sorted)-1]
}
