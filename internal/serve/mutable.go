package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dnnd/internal/knng"
	"dnnd/internal/msg"
	"dnnd/internal/wire"
)

// MutableConfig turns a Server into an online, mutable index: ingest
// appends points to a pending delta, deletes tombstone points with
// immediate query visibility, and a background refiner folds the delta
// into the graph with an incremental build, publishing the result as a
// new snapshot (an atomic pointer swap; queries in flight keep their
// pinned version and never block).
type MutableConfig[T wire.Scalar] struct {
	// Refine builds the next graph: data is the full dataset (base +
	// pending delta, immutable for the duration of the call), prior is
	// the current graph (covering a prefix of data), dead is a frozen
	// tombstone set over data. The returned graph must cover all of
	// data. The command-line server passes dnnd.Refresh; tests may pass
	// anything deterministic. Called from the refiner goroutine only.
	Refine func(data [][]T, prior *knng.Graph, dead *knng.TombSet) (*knng.Graph, error)
	// RefineEvery triggers a background refinement once the pending
	// delta reaches this many points (default 256). Flush forces one
	// regardless.
	RefineEvery int
	// MaxPending bounds the un-refined delta; ingests that would exceed
	// it are rejected with SStatusOverloaded until the refiner catches
	// up (default 1<<20).
	MaxPending int
	// Gen seeds the generation counter (from a persisted store's
	// manifest; 0 for a fresh index).
	Gen uint64
	// Tombs seeds the tombstone set (from a persisted store). Grown to
	// cover the dataset; nil starts empty.
	Tombs *knng.TombSet
	// Pending seeds the delta with rows persisted but not yet refined
	// into the graph (LoadMutable's pending return).
	Pending [][]T
	// LogIngest, LogDelete, and Publish are optional durability hooks.
	// LogIngest and LogDelete run synchronously on the mutation path
	// with the mutation lock still held, so a log that appends in
	// hook-call order replays correctly: ingest batches arrive in
	// exactly ID-assignment order (point IDs are positional), and a
	// delete is always logged after the ingest that created its IDs.
	// The hooks must be fast (they stall concurrent mutations, not
	// queries) and must not call back into the server. Publish runs on
	// the refiner goroutine after each snapshot swap with the newly
	// published graph, dataset, tombstones, and generation. Hook errors
	// are counted (MutLogErrors) but do not fail the mutation: the
	// in-memory index is the source of truth while the server runs.
	LogIngest func(vecs [][]T) error
	LogDelete func(ids []knng.ID) error
	Publish   func(g *knng.Graph, data [][]T, tombs *knng.TombSet, gen uint64) error
}

func (c MutableConfig[T]) withDefaults() MutableConfig[T] {
	if c.RefineEvery <= 0 {
		c.RefineEvery = 256
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 1 << 20
	}
	return c
}

type flushReply struct {
	gen uint64
	err error
}

// mutable is the server's write side. Invariants, all under mu:
//   - data is base rows + appended delta rows; data[:len(snapshot.data)]
//     is never written again (published snapshots alias it).
//   - tombs is always the object published in the current snapshot, so
//     a Kill is immediately visible to every in-flight query.
//   - pendingDead holds deletes of IDs the published tombs does not
//     cover yet (points still in the delta); they are folded into the
//     grown set at the next publish.
//   - gen only moves forward, by exactly one per publish.
type mutable[T wire.Scalar] struct {
	cfg MutableConfig[T]

	mu          sync.Mutex
	data        [][]T
	tombs       *knng.TombSet
	pendingDead []knng.ID
	dirty       bool // un-refined mutations exist
	gen         uint64

	kick   chan struct{} // non-blocking refinement trigger
	flushC chan chan flushReply
	quit   chan struct{}
	done   chan struct{}
}

// EnableMutation switches the server from frozen to mutable serving.
// Call it after New and before Serve; the refiner goroutine starts
// immediately and Shutdown stops it. Quantized sources stay
// frozen-only (the code view is built over a fixed dataset).
func (s *Server[T]) EnableMutation(cfg MutableConfig[T]) error {
	if s.mut != nil {
		return errors.New("serve: mutation already enabled")
	}
	if cfg.Refine == nil {
		return errors.New("serve: MutableConfig needs a Refine function")
	}
	if s.src.Quant != nil {
		return errors.New("serve: quantized serving is frozen-only")
	}
	cfg = cfg.withDefaults()

	data := s.src.Data
	baseN := len(data)
	if len(cfg.Pending) > 0 {
		data = append(data[:baseN:baseN], cfg.Pending...)
	}
	tombs := cfg.Tombs
	if tombs == nil {
		tombs = knng.NewTombSet(len(data))
	} else if tombs.Len() > len(data) {
		return fmt.Errorf("serve: tombstone set covers %d IDs but dataset has %d rows",
			tombs.Len(), len(data))
	}
	m := &mutable[T]{
		cfg:    cfg,
		data:   data,
		tombs:  tombs,
		dirty:  len(cfg.Pending) > 0 || tombs.Count() > 0,
		gen:    cfg.Gen,
		kick:   make(chan struct{}, 1),
		flushC: make(chan chan flushReply),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.mut = m
	// Re-publish the initial snapshot with the live tombstone set and
	// generation; the graph still covers only the base rows — pending
	// rows become searchable at the first refinement.
	s.cur.Store(&snapshot[T]{graph: s.src.Graph, data: s.src.Data, tombs: tombs, gen: cfg.Gen})
	s.m.Gen = func() uint64 { m.mu.Lock(); defer m.mu.Unlock(); return m.gen }
	s.m.PendingDelta = func() int {
		m.mu.Lock()
		defer m.mu.Unlock()
		return len(m.data) - len(s.cur.Load().data)
	}
	go m.refineLoop(s)
	if m.dirty {
		m.kickRefine() // fold persisted pending rows in without waiting for traffic
	}
	return nil
}

// handleMutation decodes, executes, and answers one mutation frame; it
// reports whether the connection is still usable.
func (s *Server[T]) handleMutation(sc *serverConn, op uint8, payload []byte, w *wire.Writer) bool {
	rep := s.execMutation(op, payload)
	w.Reset()
	rep.Encode(w)
	return sc.writeFrame(op, w.Bytes()) == nil
}

func (s *Server[T]) execMutation(op uint8, payload []byte) msg.SUpdateReply {
	m := s.mut
	gen := s.cur.Load().gen
	switch op {
	case msg.SOpIngest:
		var in msg.SIngest[T]
		r := wire.NewReader(payload)
		in.Decode(r)
		if r.Finish() != nil {
			return msg.SUpdateReply{ID: in.ID, Status: msg.SStatusBadRequest, Gen: gen}
		}
		if m == nil {
			s.m.RejectedReadOnly.Add(1)
			return msg.SUpdateReply{ID: in.ID, Status: msg.SStatusReadOnly, Gen: gen}
		}
		if s.gate.isDraining() {
			return msg.SUpdateReply{ID: in.ID, Status: msg.SStatusDraining, Gen: gen}
		}
		for _, v := range in.Vecs {
			if len(v) != s.dim {
				return msg.SUpdateReply{ID: in.ID, Status: msg.SStatusBadRequest, Gen: gen}
			}
		}
		return m.ingest(s, in.ID, in.Vecs)
	case msg.SOpDelete:
		var del msg.SDelete
		r := wire.NewReader(payload)
		del.Decode(r)
		if r.Finish() != nil {
			return msg.SUpdateReply{ID: del.ID, Status: msg.SStatusBadRequest, Gen: gen}
		}
		if m == nil {
			s.m.RejectedReadOnly.Add(1)
			return msg.SUpdateReply{ID: del.ID, Status: msg.SStatusReadOnly, Gen: gen}
		}
		if s.gate.isDraining() {
			return msg.SUpdateReply{ID: del.ID, Status: msg.SStatusDraining, Gen: gen}
		}
		return m.delete(s, del.ID, del.IDs)
	default: // msg.SOpFlush
		var fl msg.SFlush
		r := wire.NewReader(payload)
		fl.Decode(r)
		if r.Finish() != nil {
			return msg.SUpdateReply{ID: fl.ID, Status: msg.SStatusBadRequest, Gen: gen}
		}
		if m == nil {
			s.m.RejectedReadOnly.Add(1)
			return msg.SUpdateReply{ID: fl.ID, Status: msg.SStatusReadOnly, Gen: gen}
		}
		return m.flush(s, fl.ID)
	}
}

// ingest appends vecs to the delta. The rows become searchable at the
// next publish; until then queries answer from the pinned snapshot
// without them (never a torn view). Vecs were decoded into fresh
// slices, so they are retained without copying.
func (m *mutable[T]) ingest(s *Server[T], id uint64, vecs [][]T) msg.SUpdateReply {
	m.mu.Lock()
	pending := len(m.data) - len(s.cur.Load().data)
	if pending+len(vecs) > m.cfg.MaxPending {
		gen := m.gen
		m.mu.Unlock()
		m.kickRefine()
		return msg.SUpdateReply{ID: id, Status: msg.SStatusOverloaded, Gen: gen}
	}
	first := uint64(len(m.data))
	m.data = append(m.data, vecs...)
	if len(vecs) > 0 {
		m.dirty = true
	}
	// Log while still holding mu: IDs are positional, so the log must
	// see batches in exactly ID-assignment order or a replay rebuilds
	// rows at the wrong IDs.
	logErr := false
	if m.cfg.LogIngest != nil && len(vecs) > 0 {
		logErr = m.cfg.LogIngest(vecs) != nil
	}
	gen := m.gen
	pending += len(vecs)
	m.mu.Unlock()

	s.m.IngestOps.Add(1)
	s.m.Ingested.Add(int64(len(vecs)))
	if logErr {
		s.m.MutLogErrors.Add(1)
	}
	if pending >= m.cfg.RefineEvery {
		m.kickRefine()
	}
	return msg.SUpdateReply{ID: id, Status: msg.SStatusOK, Gen: gen, First: first, Count: uint32(len(vecs))}
}

// delete tombstones ids. IDs the published set covers are killed in
// place — the snapshot's own TombSet, so in-flight and future queries
// stop returning them immediately. IDs still in the delta are queued
// on pendingDead and folded in at the next publish (they were never
// searchable to begin with). Unknown and already-dead IDs count out.
func (m *mutable[T]) delete(s *Server[T], id uint64, ids []knng.ID) msg.SUpdateReply {
	m.mu.Lock()
	newly := 0
	for _, v := range ids {
		switch {
		case int(v) >= len(m.data):
			// unknown ID: not an error, just not counted
		case int(v) < m.tombs.Len():
			if m.tombs.Kill(v) {
				newly++
			}
		case !containsID(m.pendingDead, v):
			m.pendingDead = append(m.pendingDead, v)
			newly++
		}
	}
	if newly > 0 {
		m.dirty = true
	}
	// Log under mu, like ingest: a delete must be logged after the
	// ingest that assigned its IDs, or a replay drops it as unknown.
	logErr := false
	if m.cfg.LogDelete != nil && len(ids) > 0 {
		logErr = m.cfg.LogDelete(ids) != nil
	}
	gen := m.gen
	m.mu.Unlock()

	s.m.DeleteOps.Add(1)
	s.m.Tombstoned.Add(int64(newly))
	if logErr {
		s.m.MutLogErrors.Add(1)
	}
	return msg.SUpdateReply{ID: id, Status: msg.SStatusOK, Gen: gen, Count: uint32(newly)}
}

// flush forces a refinement and blocks until the refiner publishes
// (or reports failure). Mutations submitted before the flush are
// guaranteed to be in the published snapshot: the refiner runs a fresh
// refinement for every waiter it picks up, and that refinement
// captures its inputs after the flush was enqueued.
func (m *mutable[T]) flush(s *Server[T], id uint64) msg.SUpdateReply {
	s.m.FlushOps.Add(1)
	ch := make(chan flushReply, 1)
	select {
	case m.flushC <- ch:
	case <-m.quit:
		return msg.SUpdateReply{ID: id, Status: msg.SStatusDraining, Gen: s.cur.Load().gen}
	}
	select {
	case rep := <-ch:
		if rep.err != nil {
			// Refinement failed; the previous snapshot keeps serving and
			// the mutations stay pending. Overloaded = "retry later".
			return msg.SUpdateReply{ID: id, Status: msg.SStatusOverloaded, Gen: rep.gen}
		}
		return msg.SUpdateReply{ID: id, Status: msg.SStatusOK, Gen: rep.gen}
	case <-m.quit:
		return msg.SUpdateReply{ID: id, Status: msg.SStatusDraining, Gen: s.cur.Load().gen}
	}
}

func (m *mutable[T]) kickRefine() {
	select {
	case m.kick <- struct{}{}:
	default: // a refinement is already pending
	}
}

// stopRefiner terminates the refiner goroutine and waits for it. An
// in-progress refinement runs to completion (incremental builds are
// not cancellable mid-protocol) and still publishes.
func (m *mutable[T]) stopRefiner() {
	close(m.quit)
	<-m.done
}

// Failed refinements are retried with exponential backoff so pending
// mutations do not sit unsearchable until the next mutation or flush
// happens to re-kick the refiner.
const (
	refineRetryMin = 100 * time.Millisecond
	refineRetryMax = 5 * time.Second
)

// refineLoop is the single background refiner: triggered by kicks
// (delta threshold), flushes, and retry timers after a failure, it
// runs one refinement at a time and answers every flush waiter it
// picked up before starting.
func (m *mutable[T]) refineLoop(s *Server[T]) {
	defer close(m.done)
	backoff := refineRetryMin
	var retry *time.Timer
	var retryC <-chan time.Time
	stopRetry := func() {
		if retry != nil {
			retry.Stop()
			retry, retryC = nil, nil
		}
	}
	defer stopRetry()
	for {
		var waiters []chan flushReply
		select {
		case <-m.kick:
		case <-retryC:
			retry, retryC = nil, nil
		case ch := <-m.flushC:
			waiters = append(waiters, ch)
		case <-m.quit:
			return
		}
	coalesce:
		for {
			select {
			case ch := <-m.flushC:
				waiters = append(waiters, ch)
			default:
				break coalesce
			}
		}
		gen, err := m.refineOnce(s)
		for _, ch := range waiters {
			ch <- flushReply{gen: gen, err: err}
		}
		stopRetry()
		if err != nil {
			retry = time.NewTimer(backoff)
			retryC = retry.C
			if backoff *= 2; backoff > refineRetryMax {
				backoff = refineRetryMax
			}
		} else {
			backoff = refineRetryMin
		}
	}
}

// refineOnce captures a frozen view of the mutations (full dataset
// slice, tombstones cloned and grown over it), runs the incremental
// build outside the lock, then publishes the result as a new snapshot
// under the lock. Mutations arriving during the build are safe: base
// deletes hit the still-published old TombSet (visible immediately,
// re-captured by the publish-time clone), delta deletes queue on
// pendingDead, and ingests append past newN — all of them re-mark the
// state dirty for the next round.
func (m *mutable[T]) refineOnce(s *Server[T]) (uint64, error) {
	m.mu.Lock()
	if !m.dirty {
		gen := m.gen
		m.mu.Unlock()
		return gen, nil
	}
	newN := len(m.data)
	data := m.data[:newN:newN]
	prior := s.cur.Load().graph
	frozen := m.tombs.CloneGrow(newN)
	for _, id := range m.pendingDead {
		frozen.Kill(id) // all pendingDead IDs are < newN by construction
	}
	m.dirty = false // mutations from here on re-dirty for the next round
	m.mu.Unlock()

	g, err := m.cfg.Refine(data, prior, frozen)
	if err == nil && g.NumVertices() != newN {
		err = fmt.Errorf("serve: refine returned %d vertices for %d rows", g.NumVertices(), newN)
	}
	if err != nil {
		m.mu.Lock()
		m.dirty = true
		gen := m.gen
		m.mu.Unlock()
		s.m.RefineErrors.Add(1)
		return gen, err
	}

	m.mu.Lock()
	// Publish-time tombstones: re-clone from the live set so deletes
	// that landed during the build are not lost, then fold in the
	// pendingDead entries the grown range now covers.
	newTombs := m.tombs.CloneGrow(newN)
	rest := m.pendingDead[:0]
	for _, id := range m.pendingDead {
		if int(id) < newN {
			newTombs.Kill(id)
		} else {
			rest = append(rest, id) // ingested during the build, still delta
		}
	}
	m.pendingDead = rest
	m.tombs = newTombs
	m.gen++
	gen := m.gen
	s.cur.Store(&snapshot[T]{graph: g, data: data, tombs: newTombs, gen: gen})
	if len(m.data) > newN || len(rest) > 0 {
		m.dirty = true
	}
	m.mu.Unlock()

	s.m.Refines.Add(1)
	if m.cfg.Publish != nil {
		if perr := m.cfg.Publish(g, data, newTombs, gen); perr != nil {
			s.m.MutLogErrors.Add(1)
		}
	}
	return gen, nil
}

func containsID(ids []knng.ID, id knng.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
