package serve

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnnd"
	"dnnd/internal/knng"
	"dnnd/internal/metric"
	"dnnd/internal/msg"
)

// mutableFixture builds a base index, a server over it, and a Refine
// hook backed by the real incremental build (dnnd.Refresh), then
// serves it on a loopback listener. Returned shutdown must be called.
// Builds run single-rank: multi-rank builds vary run to run with
// message-arrival order, and the determinism tests compare two
// independently constructed fixtures bit for bit.
func mutableFixture(t *testing.T, n, dim, k int, cfg Config, mcfg MutableConfig[float32]) (*Server[float32], *Client, func()) {
	t.Helper()
	data := randData(n, dim, 31)
	built, err := dnnd.Build(data, dnnd.BuildOptions{K: k, Metric: metric.SquaredL2, Ranks: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src := Source[float32]{
		Graph:  built.Graph,
		Data:   data,
		Dist:   metric.SquaredL2Float32,
		Metric: string(metric.SquaredL2),
		K:      k,
	}
	s, err := New(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mcfg.Refine == nil {
		mcfg.Refine = func(data [][]float32, prior *knng.Graph, dead *knng.TombSet) (*knng.Graph, error) {
			res, err := dnnd.Refresh(data, prior, dead,
				dnnd.BuildOptions{K: k, Metric: metric.SquaredL2, Ranks: 1, Seed: 3})
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		}
	}
	if err := s.EnableMutation(mcfg); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := func() {
		c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve returned %v", err)
		}
	}
	return s, c, shutdown
}

// TestMutableIngestFlushDelete is the mutation-path acceptance test:
// ingested points are absent until a flush publishes a refined
// snapshot, then findable as their own exact nearest neighbor; deleted
// points disappear from results immediately (before any refinement)
// and stay gone after the next publish.
func TestMutableIngestFlushDelete(t *testing.T) {
	const n, dim, k, l = 600, 8, 8, 24
	s, c, shutdown := mutableFixture(t, n, dim, k, Config{L: l, Epsilon: 0.25}, MutableConfig[float32]{
		RefineEvery: 1 << 20, // only explicit flushes publish
	})
	defer shutdown()

	extra := randData(64, dim, 77)
	up, err := Ingest(c, extra)
	if err != nil {
		t.Fatal(err)
	}
	if up.Status != msg.SStatusOK || up.First != n || up.Count != uint32(len(extra)) || up.Gen != 0 {
		t.Fatalf("ingest reply: %+v", up)
	}

	// Pre-flush: the pending rows are not searchable; self-queries must
	// not return IDs >= n.
	for i, vec := range extra[:8] {
		res, err := Do(c, &msg.SQuery[float32]{ID: uint64(i), Seed: int64(i), L: l, Vec: vec})
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range res.Neighbors {
			if int(nb.ID) >= n {
				t.Fatalf("pre-flush query %d returned un-published ID %d", i, nb.ID)
			}
		}
	}
	if hello, err := c.Hello(); err != nil || int(hello.N) != n {
		t.Fatalf("pre-flush hello N = %d, %v; want %d", hello.N, err, n)
	}

	up, err = c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if up.Status != msg.SStatusOK || up.Gen != 1 {
		t.Fatalf("flush reply: %+v", up)
	}
	if hello, err := c.Hello(); err != nil || int(hello.N) != n+len(extra) {
		t.Fatalf("post-flush hello N = %d, %v; want %d", hello.N, err, n+len(extra))
	}

	// Post-flush: every ingested point is its own exact nearest
	// neighbor at distance 0.
	for i, vec := range extra {
		res, err := Do(c, &msg.SQuery[float32]{ID: uint64(i), Seed: int64(i), L: l, Vec: vec})
		if err != nil {
			t.Fatal(err)
		}
		wantID := knng.ID(n + i)
		if res.Status != msg.SStatusOK || len(res.Neighbors) == 0 ||
			res.Neighbors[0].ID != wantID || res.Neighbors[0].Dist != 0 {
			t.Fatalf("post-flush self query %d: status=%s neighbors=%v",
				i, msg.SStatusName(res.Status), res.Neighbors)
		}
	}

	// Delete a mix of base and ingested points...
	dead := []knng.ID{3, 9, knng.ID(n + 5)}
	up, err = c.Delete(dead)
	if err != nil {
		t.Fatal(err)
	}
	if up.Status != msg.SStatusOK || up.Count != uint32(len(dead)) {
		t.Fatalf("delete reply: %+v", up)
	}
	// ...re-deleting is idempotent (Count 0)...
	if up, err = c.Delete(dead); err != nil || up.Count != 0 {
		t.Fatalf("re-delete reply: %+v, %v", up, err)
	}
	// ...and the dead are gone IMMEDIATELY, without any refinement:
	// self-querying a dead point's own vector must not return it.
	checkDead := func(stage string) {
		t.Helper()
		for _, id := range dead {
			var vec []float32
			if int(id) < n {
				vec = s.src.Data[id]
			} else {
				vec = extra[int(id)-n]
			}
			res, err := Do(c, &msg.SQuery[float32]{ID: uint64(id), Seed: 1, L: l, Vec: vec})
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != msg.SStatusOK || len(res.Neighbors) == 0 {
				t.Fatalf("%s: dead self query %d: status=%s n=%d",
					stage, id, msg.SStatusName(res.Status), len(res.Neighbors))
			}
			for _, nb := range res.Neighbors {
				if nb.ID == id {
					t.Fatalf("%s: deleted ID %d returned as a result", stage, id)
				}
			}
		}
	}
	checkDead("pre-refine")

	// After the repair refinement the dead stay gone.
	if up, err = c.Flush(); err != nil || up.Status != msg.SStatusOK || up.Gen != 2 {
		t.Fatalf("repair flush reply: %+v, %v", up, err)
	}
	checkDead("post-refine")

	// A no-op flush publishes nothing new.
	if up, err = c.Flush(); err != nil || up.Gen != 2 {
		t.Fatalf("no-op flush reply: %+v, %v", up, err)
	}

	dump, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if v := statValue(t, dump, "dnnd_serve_ingested_total"); int(v) != len(extra) {
		t.Fatalf("ingested_total = %v, want %d", v, len(extra))
	}
	if v := statValue(t, dump, "dnnd_serve_tombstoned_total"); int(v) != len(dead) {
		t.Fatalf("tombstoned_total = %v, want %d", v, len(dead))
	}
	if v := statValue(t, dump, "dnnd_serve_refines_total"); int(v) != 2 {
		t.Fatalf("refines_total = %v, want 2", v)
	}
	if v := statValue(t, dump, "dnnd_serve_generation"); int(v) != 2 {
		t.Fatalf("generation = %v, want 2", v)
	}
	if v := statValue(t, dump, "dnnd_serve_pending_delta"); int(v) != 0 {
		t.Fatalf("pending_delta = %v, want 0", v)
	}
	if health, err := c.Health(); err != nil {
		t.Fatal(err)
	} else if want := "mode=mutable gen=2"; !containsStr(health, want) {
		t.Fatalf("health = %q, want it to contain %q", health, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestFrozenServerRejectsMutations: a server without EnableMutation
// answers every mutation op with the typed read_only status.
func TestFrozenServerRejectsMutations(t *testing.T) {
	src := testSource(t, 60, 4, 4)
	s, err := New(src, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if up, err := Ingest(c, [][]float32{{1, 2, 3, 4}}); err != nil || up.Status != msg.SStatusReadOnly {
		t.Fatalf("frozen ingest: %+v, %v", up, err)
	}
	if up, err := c.Delete([]knng.ID{1}); err != nil || up.Status != msg.SStatusReadOnly {
		t.Fatalf("frozen delete: %+v, %v", up, err)
	}
	if up, err := c.Flush(); err != nil || up.Status != msg.SStatusReadOnly {
		t.Fatalf("frozen flush: %+v, %v", up, err)
	}
	if s.Metrics().RejectedReadOnly.Load() != 3 {
		t.Fatalf("RejectedReadOnly = %d", s.Metrics().RejectedReadOnly.Load())
	}
	// Queries still work.
	if res, err := Do(c, &msg.SQuery[float32]{ID: 1, L: 4, Vec: src.Data[0]}); err != nil ||
		res.Status != msg.SStatusOK {
		t.Fatalf("frozen query: %+v, %v", res, err)
	}
}

// TestSnapshotSwapUnderConcurrentQueries hammers the query path while
// the refiner publishes generation after generation. Queries must
// never block on a swap, never error, and never see a torn graph:
// every reply is OK, every returned ID is a committed point (within
// the final dataset, never a deleted one), and every distance matches
// an exact recomputation against the immutable rows.
func TestSnapshotSwapUnderConcurrentQueries(t *testing.T) {
	const n, dim, k, l = 500, 8, 8, 16
	const rounds, perRound = 4, 48
	s, c, shutdown := mutableFixture(t, n, dim, k,
		Config{L: l, Epsilon: 0.25, Lanes: 2, Workers: 2},
		MutableConfig[float32]{RefineEvery: 1 << 20})
	defer shutdown()

	queries := randData(64, dim, 41)
	extra := randData(rounds*perRound, dim, 42)
	all := append(append([][]float32(nil), s.src.Data...), extra...)
	// One base point is deleted before any querying starts: it must
	// never appear in any reply, in any generation.
	const deadID = knng.ID(7)
	if up, err := c.Delete([]knng.ID{deadID}); err != nil || up.Count != 1 {
		t.Fatalf("delete: %+v, %v", up, err)
	}

	stop := make(chan struct{})
	var qerr atomic.Value
	var queriesRun atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qc, err := Dial(c.c.RemoteAddr().String(), 5*time.Second)
			if err != nil {
				qerr.Store(fmt.Errorf("dial: %v", err))
				return
			}
			defer qc.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qv := queries[(g*31+i)%len(queries)]
				res, err := Do(qc, &msg.SQuery[float32]{
					ID: uint64(i), Seed: int64(g*1000 + i), L: l, Vec: qv,
				})
				if err != nil {
					qerr.Store(fmt.Errorf("worker %d query %d: %v", g, i, err))
					return
				}
				if res.Status != msg.SStatusOK {
					qerr.Store(fmt.Errorf("worker %d query %d: status %s", g, i, msg.SStatusName(res.Status)))
					return
				}
				for _, nb := range res.Neighbors {
					if int(nb.ID) >= len(all) {
						qerr.Store(fmt.Errorf("worker %d: ID %d beyond any committed snapshot", g, nb.ID))
						return
					}
					if nb.ID == deadID {
						qerr.Store(fmt.Errorf("worker %d: deleted ID %d returned", g, nb.ID))
						return
					}
					if want := metric.SquaredL2Float32(qv, all[nb.ID]); nb.Dist != want {
						qerr.Store(fmt.Errorf("worker %d: torn result: dist(%d) = %v, want %v",
							g, nb.ID, nb.Dist, want))
						return
					}
				}
				queriesRun.Add(1)
			}
		}(g)
	}

	// Mutator: ingest + flush rounds, each publishing a new snapshot
	// while the query workers run.
	for r := 0; r < rounds; r++ {
		if up, err := Ingest(c, extra[r*perRound:(r+1)*perRound]); err != nil || up.Status != msg.SStatusOK {
			t.Fatalf("round %d ingest: %+v, %v", r, up, err)
		}
		up, err := c.Flush()
		if err != nil || up.Status != msg.SStatusOK {
			t.Fatalf("round %d flush: %+v, %v", r, up, err)
		}
		if up.Gen != uint64(r+1) {
			t.Fatalf("round %d published gen %d", r, up.Gen)
		}
	}
	close(stop)
	wg.Wait()
	if err, ok := qerr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
	if queriesRun.Load() == 0 {
		t.Fatal("no queries ran concurrently with the swaps; test proved nothing")
	}
	if got := s.Metrics().Refines.Load(); got != rounds {
		t.Fatalf("refines = %d, want %d", got, rounds)
	}
}

// TestLoadgenMutateMode drives the mixed read/write load generator
// against a mutable server and checks the per-op-class report: every
// class ran, every op succeeded, and the server's counters agree with
// the generator's op plan.
func TestLoadgenMutateMode(t *testing.T) {
	const n, dim, k, l = 500, 8, 8, 12
	s, c, shutdown := mutableFixture(t, n, dim, k,
		Config{L: l, Epsilon: 0.25, Lanes: 2, Workers: 2},
		MutableConfig[float32]{RefineEvery: 64})
	defer shutdown()
	addr := c.c.RemoteAddr().String()

	queries := randData(64, dim, 61)
	const requests = 400
	rep, err := RunLoad[float32](LoadConfig{
		Addr:           addr,
		Requests:       requests,
		Concurrency:    8,
		L:              l,
		Epsilon:        0.25,
		Seed:           5,
		DialTimeout:    5 * time.Second,
		Mutate:         true,
		IngestFraction: 0.10,
		DeleteFraction: 0.05,
		IngestBatch:    3,
		FlushEvery:     100,
	}, queries)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("transport errors: %d", rep.Errors)
	}
	total := 0
	for _, name := range []string{"query", "ingest", "delete", "flush"} {
		op := rep.PerOp[name]
		if op == nil || op.Count == 0 {
			t.Fatalf("op class %q missing from report: %+v", name, rep.PerOp)
		}
		if op.ByStatus["ok"] != op.Count {
			t.Fatalf("op class %q: by_status %v over %d ops", name, op.ByStatus, op.Count)
		}
		if op.Latency.P50 <= 0 || op.Latency.Max < op.Latency.P50 {
			t.Fatalf("op class %q latency summary: %+v", name, op.Latency)
		}
		total += op.Count
	}
	if total != requests {
		t.Fatalf("per-op counts sum to %d, want %d", total, requests)
	}
	if rep.PerOp["flush"].Count != requests/100 {
		t.Fatalf("flush count = %d, want %d", rep.PerOp["flush"].Count, requests/100)
	}

	m := s.Metrics()
	if got := m.IngestOps.Load(); got != int64(rep.PerOp["ingest"].Count) {
		t.Fatalf("server saw %d ingest ops, generator sent %d", got, rep.PerOp["ingest"].Count)
	}
	if got := m.Ingested.Load(); got != int64(rep.PerOp["ingest"].Count*3) {
		t.Fatalf("server ingested %d vectors, want %d", got, rep.PerOp["ingest"].Count*3)
	}
	if got := m.DeleteOps.Load(); got != int64(rep.PerOp["delete"].Count) {
		t.Fatalf("server saw %d delete ops, generator sent %d", got, rep.PerOp["delete"].Count)
	}
	// The pipelined client cannot carry mutations: typed error, fast.
	if _, err := RunLoad[float32](LoadConfig{
		Addr: addr, Requests: 8, Mutate: true, Conns: 2, DialTimeout: time.Second,
	}, queries); err == nil {
		t.Fatal("mutate mode with -conns pipelining did not error")
	}
}

// TestMutableDeterministicAcrossWorkers: the same mutation + flush
// sequence on servers with different lane/worker widths must serve
// bit-identical answers — the incremental build and the search are
// deterministic, so parallelism must not leak into results.
func TestMutableDeterministicAcrossWorkers(t *testing.T) {
	const n, dim, k, l = 400, 8, 8, 16
	queries := randData(32, dim, 51)
	extra := randData(50, dim, 52)

	run := func(cfg Config) [][]knng.Neighbor {
		s, c, shutdown := mutableFixture(t, n, dim, k, cfg, MutableConfig[float32]{RefineEvery: 1 << 20})
		defer shutdown()
		_ = s
		if up, err := Ingest(c, extra); err != nil || up.Status != msg.SStatusOK {
			t.Fatalf("ingest: %+v, %v", up, err)
		}
		if up, err := c.Delete([]knng.ID{2, 11, knng.ID(n + 3)}); err != nil || up.Status != msg.SStatusOK {
			t.Fatalf("delete: %+v, %v", up, err)
		}
		if up, err := c.Flush(); err != nil || up.Status != msg.SStatusOK || up.Gen != 1 {
			t.Fatalf("flush: %+v, %v", up, err)
		}
		out := make([][]knng.Neighbor, len(queries))
		for i, qv := range queries {
			res, err := Do(c, &msg.SQuery[float32]{ID: uint64(i), Seed: int64(i), L: l, Vec: qv})
			if err != nil || res.Status != msg.SStatusOK {
				t.Fatalf("query %d: %+v, %v", i, res, err)
			}
			out[i] = res.Neighbors
		}
		return out
	}

	narrow := run(Config{L: l, Epsilon: 0.25, Lanes: 1, Workers: 1})
	wide := run(Config{L: l, Epsilon: 0.25, Lanes: 3, Workers: 4})
	for i := range narrow {
		if len(narrow[i]) != len(wide[i]) {
			t.Fatalf("query %d: %d vs %d results", i, len(narrow[i]), len(wide[i]))
		}
		for j := range narrow[i] {
			if narrow[i][j] != wide[i][j] {
				t.Fatalf("query %d result %d: %+v vs %+v", i, j, narrow[i][j], wide[i][j])
			}
		}
	}
}

// TestRefineFailureRetries: a failed refinement must not strand the
// pending delta until the next mutation — the refiner re-kicks itself
// with backoff and publishes once Refine recovers, with no further
// traffic arriving.
func TestRefineFailureRetries(t *testing.T) {
	const n, dim, k, l = 200, 8, 8, 12
	const failures = 2
	var calls atomic.Int32
	mcfg := MutableConfig[float32]{
		RefineEvery: 1, // the single ingest below kicks the refiner
		Refine: func(data [][]float32, prior *knng.Graph, dead *knng.TombSet) (*knng.Graph, error) {
			if calls.Add(1) <= failures {
				return nil, fmt.Errorf("injected refine failure")
			}
			res, err := dnnd.Refresh(data, prior, dead,
				dnnd.BuildOptions{K: k, Metric: metric.SquaredL2, Ranks: 1, Seed: 3})
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		},
	}
	s, c, shutdown := mutableFixture(t, n, dim, k, Config{L: l, Epsilon: 0.25}, mcfg)
	defer shutdown()

	if up, err := Ingest(c, randData(1, dim, 99)); err != nil || up.Status != msg.SStatusOK {
		t.Fatalf("ingest: %+v, %v", up, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for s.cur.Load().gen != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("refiner never recovered: %d refine calls, gen %d",
				calls.Load(), s.cur.Load().gen)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Metrics().RefineErrors.Load(); got != failures {
		t.Fatalf("RefineErrors = %d, want %d", got, failures)
	}
	if got := s.Metrics().Refines.Load(); got != 1 {
		t.Fatalf("Refines = %d, want 1", got)
	}
	// The published snapshot covers the ingested row.
	if snap := s.cur.Load(); len(snap.data) != n+1 {
		t.Fatalf("published snapshot covers %d rows, want %d", len(snap.data), n+1)
	}
}

// TestMutationLogOrder: LogIngest runs while the mutation lock is
// held, so the durability log observes batches in exactly ID-assignment
// order even under concurrent writers — replaying the log in hook-call
// order must rebuild the dataset tail row for row (point IDs are
// positional, so any reordering silently corrupts a replayed index).
func TestMutationLogOrder(t *testing.T) {
	const n, dim, k, l = 200, 8, 8, 12
	const writers, perWriter = 4, 30
	var logMu sync.Mutex
	var replay [][]float32
	mcfg := MutableConfig[float32]{
		RefineEvery: 1 << 20, // no refinement noise during the race
		LogIngest: func(vecs [][]float32) error {
			logMu.Lock()
			replay = append(replay, vecs...)
			logMu.Unlock()
			return nil
		},
	}
	s, c, shutdown := mutableFixture(t, n, dim, k,
		Config{L: l, Epsilon: 0.25, Lanes: 2, Workers: 2}, mcfg)
	defer shutdown()
	addr := c.c.RemoteAddr().String()

	vecs := randData(writers*perWriter, dim, 7)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := Dial(addr, 5*time.Second)
			if err != nil {
				t.Errorf("writer %d: dial: %v", w, err)
				return
			}
			defer wc.Close()
			for i := 0; i < perWriter; i++ {
				row := vecs[w*perWriter+i : w*perWriter+i+1]
				if up, err := Ingest(wc, row); err != nil || up.Status != msg.SStatusOK {
					t.Errorf("writer %d ingest %d: %+v, %v", w, i, up, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	m := s.mut
	m.mu.Lock()
	tail := append([][]float32(nil), m.data[n:]...)
	m.mu.Unlock()
	if len(replay) != len(tail) || len(tail) != writers*perWriter {
		t.Fatalf("log has %d rows, dataset tail %d, want %d", len(replay), len(tail), writers*perWriter)
	}
	for i := range tail {
		for j := range tail[i] {
			if replay[i][j] != tail[i][j] {
				t.Fatalf("log order diverges from ID-assignment order at row %d", i)
			}
		}
	}
	if got := s.Metrics().MutLogErrors.Load(); got != 0 {
		t.Fatalf("MutLogErrors = %d", got)
	}
}
