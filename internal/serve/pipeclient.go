package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dnnd/internal/msg"
	"dnnd/internal/wire"
)

// PipeClient is the pipelined protocol client: many callers share one
// connection with multiple queries in flight at once. Writes are
// serialized by a mutex; a dedicated reader goroutine routes each
// reply back to its caller by SResult.ID (the protocol explicitly
// allows out-of-order replies on one connection). This is what lets a
// load generator with a few connections keep every lane of a
// multi-core server busy — the synchronous Client needs one connection
// per in-flight request.
//
// Query IDs must be unique among a connection's in-flight requests;
// the load generator uses the global request index, which is.
type PipeClient struct {
	c net.Conn

	wmu  sync.Mutex
	w    wire.Writer
	wbuf []byte

	mu      sync.Mutex
	pending map[uint64]chan *msg.SResult
	err     error // sticky transport error set by the reader
}

// DialPipe connects a pipelined client. A non-positive timeout
// defaults to 5s.
func DialPipe(addr string, timeout time.Duration) (*PipeClient, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	pc := &PipeClient{c: c, pending: make(map[uint64]chan *msg.SResult)}
	go pc.readLoop()
	return pc, nil
}

// Close closes the connection; in-flight calls fail with the sticky
// transport error the reader records on its way out.
func (pc *PipeClient) Close() error { return pc.c.Close() }

func (pc *PipeClient) readLoop() {
	br := bufio.NewReaderSize(pc.c, 64<<10)
	var rbuf []byte
	for {
		op, payload, err := ReadFrameInto(br, &rbuf)
		if err != nil {
			pc.fail(err)
			return
		}
		if op != msg.SOpQuery {
			pc.fail(fmt.Errorf("serve: pipelined reply op %d", op))
			return
		}
		res := new(msg.SResult)
		r := wire.NewReader(payload)
		res.Decode(r)
		if err := r.Finish(); err != nil {
			pc.fail(err)
			return
		}
		pc.mu.Lock()
		ch := pc.pending[res.ID]
		delete(pc.pending, res.ID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- res // buffered; never blocks the reader
		}
	}
}

// fail records the first transport error and wakes every waiter.
func (pc *PipeClient) fail(err error) {
	pc.mu.Lock()
	if pc.err == nil {
		pc.err = err
	}
	for id, ch := range pc.pending {
		delete(pc.pending, id)
		close(ch)
	}
	pc.mu.Unlock()
}

// DoPipe runs one query over the shared connection, blocking until its
// reply arrives (other callers' queries overlap freely in between).
// Like Do, typed rejections are results, not errors.
func DoPipe[T wire.Scalar](pc *PipeClient, q *msg.SQuery[T]) (*msg.SResult, error) {
	pc.wmu.Lock()
	pc.w.Reset()
	q.Encode(&pc.w)
	payload := pc.w.Bytes()
	return pc.doLocked(q.ID, payload)
}

// DoQueryRaw sends an already-encoded SQuery payload whose leading ID
// field has been set to id, and blocks for the matching reply. This is
// the router's scatter path: it rewrites only the 8-byte ID prefix of
// the client's query payload per sub-query, so the vector bytes are
// forwarded without ever being decoded. The payload is copied into the
// connection's write buffer before DoQueryRaw returns the first time
// it blocks, so the caller may reuse it immediately.
func (pc *PipeClient) DoQueryRaw(id uint64, payload []byte) (*msg.SResult, error) {
	pc.wmu.Lock()
	return pc.doLocked(id, payload)
}

// doLocked registers id, frames and writes payload, and waits for the
// routed reply. The caller holds wmu (covering payload if it aliases
// pc.w); doLocked releases it once the frame is on the wire.
func (pc *PipeClient) doLocked(id uint64, payload []byte) (*msg.SResult, error) {
	ch := make(chan *msg.SResult, 1)
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		pc.wmu.Unlock()
		return nil, err
	}
	if _, dup := pc.pending[id]; dup {
		pc.mu.Unlock()
		pc.wmu.Unlock()
		return nil, fmt.Errorf("serve: duplicate in-flight query ID %d", id)
	}
	pc.pending[id] = ch
	pc.mu.Unlock()

	pc.wbuf = AppendFrame(pc.wbuf[:0], msg.SOpQuery, payload)
	_, err := pc.c.Write(pc.wbuf)
	pc.wmu.Unlock()
	if err != nil {
		pc.mu.Lock()
		delete(pc.pending, id)
		pc.mu.Unlock()
		return nil, err
	}

	res, ok := <-ch
	if !ok {
		pc.mu.Lock()
		err := pc.err
		pc.mu.Unlock()
		if err == nil {
			err = errors.New("serve: pipelined connection closed")
		}
		return nil, err
	}
	return res, nil
}
