// Package serve is the online query-serving subsystem: a long-lived
// TCP server answering approximate-nearest-neighbor queries over a
// persisted index through internal/search, with production scheduler
// behaviors — bounded admission with typed overload rejections,
// per-request deadlines, dynamic micro-batching onto an
// internal/engine worker pool, a warm entry-point cache, graceful
// drain, and a /metrics-style observability surface. The package also
// ships the protocol client and a closed-/open-loop load generator
// (cmd/dnnd-serve and cmd/dnnd-loadgen are thin wrappers).
//
// Wire protocol: length-prefixed frames over TCP. Each frame is a
// little-endian uint32 length (counting the op byte and payload),
// one op byte (msg.SOp*), and the payload encoded by the
// internal/msg serve codecs. Every request frame receives exactly one
// reply frame with the same op; replies to pipelined requests on one
// connection may arrive out of order, matched by SQuery.ID/SResult.ID
// (the bundled Client serializes instead, one round trip at a time).
package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// maxFrame bounds accepted frame lengths on both sides: large enough
// for any plausible query vector or stats dump, small enough that a
// corrupt length prefix cannot provoke a giant allocation.
const maxFrame = 1 << 24

const frameHeaderLen = 5 // uint32 length + op byte

// AppendFrame appends a framed message to buf and returns the
// extended slice (the caller owns buf and reuses it across frames).
func AppendFrame(buf []byte, op uint8, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = op
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// ReadFrame reads one frame, returning the op byte and the payload.
// The payload is freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) (uint8, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("serve: bad frame length %d", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// ReadFrameInto is ReadFrame with a caller-owned buffer: the returned
// payload aliases *buf (grown as needed, never shrunk) and is valid
// only until the next call with the same buffer. The header is staged
// through the same buffer so a steady-state read allocates nothing.
func ReadFrameInto(r io.Reader, buf *[]byte) (uint8, []byte, error) {
	b := *buf
	if cap(b) < frameHeaderLen {
		b = make([]byte, frameHeaderLen, 4096)
		*buf = b
	}
	hdr := b[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	op := hdr[4] // copied out before the payload overwrites b
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("serve: bad frame length %d", n)
	}
	need := int(n - 1)
	if cap(b) < need {
		b = make([]byte, need)
		*buf = b
	}
	payload := b[:need]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return op, payload, nil
}
