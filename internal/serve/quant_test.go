package serve

import (
	"context"
	"net"
	"testing"
	"time"

	"dnnd/internal/metric/quant"
	"dnnd/internal/msg"
	"dnnd/internal/search"
)

// TestServeQuantPath pins the quantized serving path end to end: with
// Source.Quant set, served results must match search.BatchQuant bit
// for bit at the same seed, and the approx-eval counter must surface
// in the stats dump.
func TestServeQuantPath(t *testing.T) {
	const (
		nq   = 64
		l    = 10
		eps  = 0.25
		seed = 9
	)
	src := testSource(t, 800, 8, 8)
	dim := len(src.Data[0])
	src.Quant = quant.NewViewFloat32(src.Data, dim)
	queryVecs := randData(nq, dim, 77)

	truth, truthStats := search.BatchQuant(src.Graph, src.Data, src.Dist, src.Quant,
		queryVecs, search.Options{L: l, Epsilon: eps, Seed: seed}, 2)
	if truthStats.ApproxEvals == 0 {
		t.Fatal("ground-truth batch recorded no approximate evaluations")
	}

	s, err := New(src, Config{L: l, Epsilon: eps, QueueDepth: 256, BatchMax: 8, Executors: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	results := make([]*msg.SResult, nq)
	rep, err := RunLoad[float32](LoadConfig{
		Addr:        ln.Addr().String(),
		Requests:    nq,
		Concurrency: 16,
		L:           l,
		Epsilon:     eps,
		Seed:        seed,
		DialTimeout: 10 * time.Second,
		Collect:     func(i int, res *msg.SResult) { results[i] = res },
	}, queryVecs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.ByStatus["ok"] != nq {
		t.Fatalf("load report: errors=%d by_status=%v", rep.Errors, rep.ByStatus)
	}
	var servedEvals int64
	for i, res := range results {
		if res == nil {
			t.Fatalf("request %d has no collected result", i)
		}
		want := truth[i]
		if len(res.Neighbors) != len(want) {
			t.Fatalf("query %d: %d neighbors, ground truth %d", i, len(res.Neighbors), len(want))
		}
		for j := range want {
			if res.Neighbors[j].ID != want[j].ID || res.Neighbors[j].Dist != want[j].Dist {
				t.Fatalf("query %d neighbor %d: got (%d, %v), want (%d, %v)",
					i, j, res.Neighbors[j].ID, res.Neighbors[j].Dist, want[j].ID, want[j].Dist)
			}
		}
		servedEvals += res.DistEvals
	}
	if servedEvals != truthStats.DistEvals {
		t.Fatalf("served exact evals %d != ground truth %d", servedEvals, truthStats.DistEvals)
	}
	if got := s.Metrics().ApproxEvals.Load(); got != truthStats.ApproxEvals {
		t.Fatalf("server approx evals %d != ground truth %d", got, truthStats.ApproxEvals)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}
