package serve

import (
	"bufio"
	"math/rand"
	"net"
	"sync"
	"time"

	"dnnd/internal/knng"
	"dnnd/internal/msg"
	"dnnd/internal/search"
	"dnnd/internal/wire"
)

func newConnReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, 64<<10) }

// dispatch assembles micro-batches from the admission queue. The
// batching is dynamic: after the first (blocking) take, whatever else
// is already queued is drained greedily up to BatchMax, so batch size
// tracks instantaneous load — singleton batches when idle (no added
// latency), full batches under pressure (amortized scheduling and
// better cache behavior in the worker pool). A non-zero BatchWait
// adds a bounded wait for the batch to fill, trading tail latency for
// larger batches.
func (s *Server[T]) dispatch() {
	defer s.loopWG.Done()
	defer close(s.execCh)
	for {
		var first *request[T]
		select {
		case first = <-s.queue:
		case <-s.stop:
			return // stop closes only after the queue drained (see Shutdown)
		}
		batch := make([]*request[T], 1, s.cfg.BatchMax)
		batch[0] = first
	greedy:
		for len(batch) < s.cfg.BatchMax {
			select {
			case r := <-s.queue:
				batch = append(batch, r)
			default:
				break greedy
			}
		}
		if s.cfg.BatchWait > 0 && len(batch) < s.cfg.BatchMax {
			timer := time.NewTimer(s.cfg.BatchWait)
		window:
			for len(batch) < s.cfg.BatchMax {
				select {
				case r := <-s.queue:
					batch = append(batch, r)
				case <-timer.C:
					break window
				case <-s.stop:
					break window
				}
			}
			timer.Stop()
		}
		s.m.Batches.Add(1)
		s.m.BatchSize.Observe(int64(len(batch)))
		select {
		case s.execCh <- batch:
		case <-s.stop:
			// Only reachable on a forced (deadline-expired) shutdown:
			// a graceful drain closes stop strictly after every
			// admitted request is replied, so no batch can be in hand
			// then. Reply so admission slots are released.
			for _, r := range batch {
				s.m.RejectedDraining.Add(1)
				s.finish(r, &msg.SResult{ID: r.id, Status: msg.SStatusDraining})
			}
			return
		}
	}
}

// executor runs micro-batches until the dispatcher closes execCh.
func (s *Server[T]) executor() {
	defer s.loopWG.Done()
	for batch := range s.execCh {
		s.runBatch(batch)
	}
}

// runBatch drops queries whose deadline expired while queued, then
// evaluates the rest in parallel on the engine worker pool. Every
// request in the batch gets exactly one reply.
func (s *Server[T]) runBatch(batch []*request[T]) {
	if s.cfg.execHook != nil {
		s.cfg.execHook()
	}
	now := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			s.m.DeadlineDropped.Add(1)
			s.finish(r, &msg.SResult{
				ID: r.id, Status: msg.SStatusDeadline,
				QueueMicros: saturatingMicros(now.Sub(r.enq)),
			})
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	// Snapshot the warm cache once per batch; queries opt in per
	// request via SFlagWarm.
	var warmSnap []knng.ID
	if s.warm != nil {
		warmSnap = s.warm.snapshot()
	}
	s.pool.ParallelFor(len(live), func(i int) {
		s.runOne(live[i], warmSnap)
	})
}

// runOne executes a single query (on a pool worker or the executor
// goroutine) and writes its reply.
func (s *Server[T]) runOne(r *request[T], warmSnap []knng.ID) {
	start := time.Now()
	opt := search.Options{L: r.l, Epsilon: r.eps}
	if r.warm && len(warmSnap) > 0 {
		opt.Entries = warmSnap
		s.m.WarmServed.Add(1)
	}
	if !r.deadline.IsZero() {
		dl := r.deadline
		opt.Interrupt = func() bool { return time.Now().After(dl) }
	}
	rng := rand.New(rand.NewSource(r.seed))
	var ns []knng.Neighbor
	var st search.Stats
	if s.src.Quant != nil {
		ns, st = search.QueryQuant(s.src.Graph, s.src.Data, s.src.Dist, s.src.Quant, r.vec, opt, rng)
	} else {
		ns, st = search.Query(s.src.Graph, s.src.Data, s.src.Dist, r.vec, opt, rng)
	}
	s.m.DistEvals.Add(st.DistEvals)
	s.m.ApproxEvals.Add(st.ApproxEvals)
	status := msg.SStatusOK
	if st.Truncated > 0 {
		status = msg.SStatusPartial
		s.m.DeadlineTruncated.Add(1)
	} else {
		s.m.CompletedOK.Add(1)
	}
	if s.warm != nil {
		s.warm.feed(ns)
	}
	exec := time.Since(start)
	s.finish(r, &msg.SResult{
		ID:          r.id,
		Status:      status,
		DistEvals:   st.DistEvals,
		QueueMicros: saturatingMicros(start.Sub(r.enq)),
		ExecMicros:  saturatingMicros(exec),
		Neighbors:   ns,
	})
	s.m.LatQueue.ObserveDuration(start.Sub(r.enq))
	s.m.LatExec.ObserveDuration(exec)
}

// finish writes the reply for an admitted request and releases its
// admission slot. A write failure (client went away) is counted but
// never blocks the drain: the request is still "answered".
func (s *Server[T]) finish(r *request[T], res *msg.SResult) {
	var w wire.Writer
	res.Encode(&w)
	if err := r.conn.writeFrame(msg.SOpQuery, w.Bytes()); err != nil {
		s.m.WriteErrors.Add(1)
	}
	s.m.LatTotal.ObserveDuration(time.Since(r.enq))
	s.m.Completed.Add(1)
	r.span.End()
	s.cfg.Trace.Counter("serve.inflight", s.m.InFlight.Add(-1))
	s.gate.leave()
}

func saturatingMicros(d time.Duration) uint32 {
	us := d.Microseconds()
	if us < 0 {
		return 0
	}
	if us > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(us)
}

// warmCache is a small ring of recently-returned good neighbor IDs,
// served as extra search entry points to queries that ask for them
// (SFlagWarm). Fresh results displace the oldest entries; the
// snapshot handed to a batch is a copy, so searches never hold the
// lock.
type warmCache struct {
	mu   sync.Mutex
	ids  []knng.ID
	next int
	full bool
}

func newWarmCache(capacity int) *warmCache {
	return &warmCache{ids: make([]knng.ID, capacity)}
}

// feed records the best few results of a completed query.
func (w *warmCache) feed(ns []knng.Neighbor) {
	take := 2
	if take > len(ns) {
		take = len(ns)
	}
	if take == 0 {
		return
	}
	w.mu.Lock()
	for i := 0; i < take; i++ {
		w.ids[w.next] = ns[i].ID
		w.next++
		if w.next == len(w.ids) {
			w.next = 0
			w.full = true
		}
	}
	w.mu.Unlock()
}

// snapshot copies the current entries (deduplicated lazily by the
// search's visited set, so duplicates here are harmless).
func (w *warmCache) snapshot() []knng.ID {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.next
	if w.full {
		n = len(w.ids)
	}
	if n == 0 {
		return nil
	}
	out := make([]knng.ID, n)
	copy(out, w.ids[:n])
	return out
}

// size reports the number of cached entries (a gauge).
func (w *warmCache) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.full {
		return len(w.ids)
	}
	return w.next
}
