package serve

import (
	"bufio"
	"net"
	"sync"
	"time"

	"dnnd/internal/engine"
	"dnnd/internal/knng"
	"dnnd/internal/msg"
	"dnnd/internal/obs"
	"dnnd/internal/search"
	"dnnd/internal/wire"
)

func newConnReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, 64<<10) }

// lane is one dispatch shard: it owns a slice of the admission queue,
// its own micro-batch assembly loop, its own engine worker pool, and
// one pooled search.Context per pool worker. Lanes share no mutable
// state on the hot path, so N lanes assemble and execute N
// micro-batches truly concurrently — the single dispatch() goroutine
// and lone execCh of the pre-lane scheduler stop serializing batch
// formation at high qps.
type lane[T wire.Scalar] struct {
	queue chan *request[T]
	pool  *engine.Pool[T]
	sctx  []*search.Context[T] // per pool worker, reused across batches
	batch []*request[T]        // reused micro-batch assembly buffer
	timer *time.Timer          // reused BatchWait window timer

	// Mutable inputs of runBody, set by runBatch before each pool run.
	// Binding runBody once (in New) keeps the ParallelForWorker body
	// off the per-batch heap. snap is the index snapshot pinned for the
	// batch: every query in the batch sees one consistent
	// graph/dataset/tombstone version even if the refiner publishes a
	// new one mid-batch.
	live     []*request[T]
	warmSnap []knng.ID
	snap     *snapshot[T]
	runBody  func(worker, i int)

	track *obs.Track // per-lane span timeline (nil without cfg.Tracer)
	stat  *LaneStat
}

// laneLoop is the lane's dispatcher and executor fused: assemble a
// micro-batch from the lane's queue shard, then execute it inline on
// the lane's own pool. The batching is dynamic, exactly as the old
// single dispatcher: after the first (blocking) take, whatever else is
// already queued is drained greedily up to BatchMax, so batch size
// tracks instantaneous load — singleton batches when idle (no added
// latency), full batches under pressure. A non-zero BatchWait adds a
// bounded wait for the batch to fill, trading tail latency for larger
// batches. The assembly buffer and window timer are reused across
// batches, so a steady-state batch allocates nothing.
func (s *Server[T]) laneLoop(ln *lane[T]) {
	defer s.loopWG.Done()
	for {
		var first *request[T]
		select {
		case first = <-ln.queue:
		case <-s.stop:
			return // stop closes only after the queues drained (see Shutdown)
		}
		batch := append(ln.batch[:0], first)
	greedy:
		for len(batch) < s.cfg.BatchMax {
			select {
			case r := <-ln.queue:
				batch = append(batch, r)
			default:
				break greedy
			}
		}
		if s.cfg.BatchWait > 0 && len(batch) < s.cfg.BatchMax {
			if ln.timer == nil {
				ln.timer = time.NewTimer(s.cfg.BatchWait)
			} else {
				ln.timer.Reset(s.cfg.BatchWait)
			}
		window:
			for len(batch) < s.cfg.BatchMax {
				select {
				case r := <-ln.queue:
					batch = append(batch, r)
				case <-ln.timer.C:
					break window
				case <-s.stop:
					break window
				}
			}
			if !ln.timer.Stop() {
				select { // fired (and maybe consumed): leave it drained for Reset
				case <-ln.timer.C:
				default:
				}
			}
		}
		ln.batch = batch // keep the (possibly grown) buffer
		s.m.Batches.Add(1)
		ln.stat.Batches.Add(1)
		s.m.BatchSize.Observe(int64(len(batch)))
		s.runBatch(ln, batch)
		for i := range batch {
			batch[i] = nil // requests are recycled by finish: drop the refs
		}
	}
}

// runBatch drops queries whose deadline expired while queued, then
// evaluates the rest in parallel on the lane's worker pool, one pooled
// search context per worker. Every request in the batch gets exactly
// one reply.
func (s *Server[T]) runBatch(ln *lane[T], batch []*request[T]) {
	if s.cfg.execHook != nil {
		s.cfg.execHook()
	}
	now := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			s.m.DeadlineDropped.Add(1)
			r.res = msg.SResult{
				ID: r.id, Status: msg.SStatusDeadline,
				QueueMicros: saturatingMicros(now.Sub(r.enq)),
			}
			r.echoTrace()
			s.finish(r)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	// Snapshot the warm cache once per batch (into the lane's reused
	// buffer); queries opt in per request via SFlagWarm.
	ln.warmSnap = ln.warmSnap[:0]
	if s.warm != nil {
		ln.warmSnap = s.warm.snapshotInto(ln.warmSnap)
	}
	sp := ln.track.BeginArg("serve.batch", int64(len(live)))
	ln.stat.Queries.Add(int64(len(live)))
	ln.live = live
	ln.snap = s.cur.Load() // pin one index version for the whole batch
	ln.pool.ParallelForWorker(len(live), ln.runBody)
	ln.live = nil
	ln.snap = nil
	sp.End()
}

// runOne executes a single query on a pooled search context (owned by
// one pool worker for the duration of the batch) and writes its reply.
// The result slice aliases the context's scratch; it is encoded onto
// the wire by finish before the context's next query, so nothing is
// copied.
func (s *Server[T]) runOne(sc *search.Context[T], r *request[T], warmSnap []knng.ID, sn *snapshot[T]) {
	start := time.Now()
	opt := search.Options{L: r.l, Epsilon: r.eps, Deadline: r.deadline, Tombs: sn.tombs}
	if r.warm && len(warmSnap) > 0 {
		// The warm cache is fed from the latest snapshot's results; a
		// batch that pinned an older snapshot across a growing swap must
		// not seed entry points the pinned graph does not have.
		ok := true
		for _, id := range warmSnap {
			if int(id) >= len(sn.data) {
				ok = false
				break
			}
		}
		if ok {
			opt.Entries = warmSnap
			s.m.WarmServed.Add(1)
		}
	}
	var ns []knng.Neighbor
	var st search.Stats
	if sn.quant != nil {
		ns, st = search.SearchQuantCtx(sc, sn.graph, sn.data, s.src.Dist, sn.quant, r.vec, opt, r.seed)
	} else {
		ns, st = search.SearchCtx(sc, sn.graph, sn.data, s.src.Dist, r.vec, opt, r.seed)
	}
	s.m.DistEvals.Add(st.DistEvals)
	s.m.ApproxEvals.Add(st.ApproxEvals)
	status := msg.SStatusOK
	if st.Truncated > 0 {
		status = msg.SStatusPartial
		s.m.DeadlineTruncated.Add(1)
	} else {
		s.m.CompletedOK.Add(1)
	}
	if s.warm != nil {
		s.warm.feed(ns)
	}
	exec := time.Since(start)
	r.res = msg.SResult{
		ID:          r.id,
		Status:      status,
		DistEvals:   st.DistEvals,
		QueueMicros: saturatingMicros(start.Sub(r.enq)),
		ExecMicros:  saturatingMicros(exec),
		Neighbors:   ns,
	}
	r.echoTrace()
	s.m.LatQueue.ObserveDuration(start.Sub(r.enq))
	s.m.LatExec.ObserveDuration(exec)
	s.finish(r)
}

// finish writes the reply held in r.res (encoded zero-copy into the
// connection's write buffer), releases the admission slot, and
// recycles the request. A write failure (client went away) is counted
// but never blocks the drain: the request is still "answered".
func (s *Server[T]) finish(r *request[T]) {
	if err := r.conn.writeResult(msg.SOpQuery, &r.res); err != nil {
		s.m.WriteErrors.Add(1)
	}
	s.m.LatTotal.ObserveDuration(time.Since(r.enq))
	s.m.Completed.Add(1)
	r.span.End()
	s.cfg.Trace.Counter("serve.inflight", s.m.InFlight.Add(-1))
	s.gate.leave()
	s.putRequest(r)
}

func saturatingMicros(d time.Duration) uint32 {
	us := d.Microseconds()
	if us < 0 {
		return 0
	}
	if us > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(us)
}

// warmCache is a small ring of recently-returned good neighbor IDs,
// served as extra search entry points to queries that ask for them
// (SFlagWarm). Fresh results displace the oldest entries; the
// snapshot handed to a batch is a copy, so searches never hold the
// lock.
type warmCache struct {
	mu   sync.Mutex
	ids  []knng.ID
	next int
	full bool
}

func newWarmCache(capacity int) *warmCache {
	return &warmCache{ids: make([]knng.ID, capacity)}
}

// feed records the best few results of a completed query.
func (w *warmCache) feed(ns []knng.Neighbor) {
	take := 2
	if take > len(ns) {
		take = len(ns)
	}
	if take == 0 {
		return
	}
	w.mu.Lock()
	for i := 0; i < take; i++ {
		w.ids[w.next] = ns[i].ID
		w.next++
		if w.next == len(w.ids) {
			w.next = 0
			w.full = true
		}
	}
	w.mu.Unlock()
}

// snapshot copies the current entries (deduplicated lazily by the
// search's visited set, so duplicates here are harmless).
func (w *warmCache) snapshot() []knng.ID {
	return w.snapshotInto(nil)
}

// snapshotInto is snapshot into a reused buffer (per-lane, so batches
// at steady state allocate nothing for it).
func (w *warmCache) snapshotInto(dst []knng.ID) []knng.ID {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.next
	if w.full {
		n = len(w.ids)
	}
	if n == 0 {
		return nil
	}
	return append(dst[:0], w.ids[:n]...)
}

// size reports the number of cached entries (a gauge).
func (w *warmCache) size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.full {
		return len(w.ids)
	}
	return w.next
}
