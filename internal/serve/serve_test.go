package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"

	"dnnd/internal/brute"
	"dnnd/internal/knng"
	"dnnd/internal/metric"
	"dnnd/internal/msg"
	"dnnd/internal/wire"
)

func randData(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()
		}
		data[i] = v
	}
	return data
}

// testSource builds a small in-memory float32 index.
func testSource(t testing.TB, n, dim, k int) Source[float32] {
	t.Helper()
	data := randData(n, dim, 41)
	dist, err := metric.ForFloat32(metric.SquaredL2)
	if err != nil {
		t.Fatal(err)
	}
	return Source[float32]{
		Graph:  brute.KNNGraph(data, k, dist, 0),
		Data:   data,
		Dist:   dist,
		Metric: string(metric.SquaredL2),
		K:      k,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, 7, []byte("abc"))
	buf = AppendFrame(buf, 9, nil)
	r := bytes.NewReader(buf)
	op, p, err := ReadFrame(r)
	if err != nil || op != 7 || string(p) != "abc" {
		t.Fatalf("frame 1: op=%d payload=%q err=%v", op, p, err)
	}
	op, p, err = ReadFrame(r)
	if err != nil || op != 9 || len(p) != 0 {
		t.Fatalf("frame 2: op=%d payload=%q err=%v", op, p, err)
	}
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatalf("read past the last frame succeeded")
	}

	// A zero length cannot even hold the op byte.
	if _, _, err := ReadFrame(bytes.NewReader(make([]byte, frameHeaderLen))); err == nil {
		t.Fatalf("zero-length frame accepted")
	}
	// An absurd length must be rejected before allocation.
	var huge [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(huge[:4], maxFrame+1)
	if _, _, err := ReadFrame(bytes.NewReader(huge[:])); err == nil {
		t.Fatalf("oversized frame accepted")
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram reports non-zero summary")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Max() != 1000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %v, want 500.5", m)
	}
	// The p50 of 1..1000 is 500, which lives in bucket [256, 512).
	if q := h.Quantile(0.5); q < 256 || q >= 512 {
		t.Fatalf("p50 = %v, want within [256, 512)", q)
	}
	// The p99 (rank 990) lives in bucket [512, 1024).
	if q := h.Quantile(0.99); q < 512 || q >= 1024 {
		t.Fatalf("p99 = %v, want within [512, 1024)", q)
	}
	if h.Quantile(0.5) > h.Quantile(0.99) {
		t.Fatalf("quantiles not monotone")
	}
}

func TestWarmCache(t *testing.T) {
	w := newWarmCache(5)
	if w.size() != 0 || w.snapshot() != nil {
		t.Fatalf("fresh cache not empty")
	}
	ns := []knng.Neighbor{{ID: 1}, {ID: 2}, {ID: 3}}
	w.feed(ns) // takes the top 2
	if w.size() != 2 || len(w.snapshot()) != 2 {
		t.Fatalf("size=%d after one feed, want 2", w.size())
	}
	w.feed(ns)
	w.feed(ns) // 6 entries into a 5-ring: wrapped, full
	if w.size() != 5 || len(w.snapshot()) != 5 {
		t.Fatalf("size=%d after wrap, want 5", w.size())
	}
	w.feed(nil) // no-op
	if w.size() != 5 {
		t.Fatalf("empty feed changed the cache")
	}
}

// collectReplies decodes SResult frames arriving on c until it closes.
func collectReplies(t *testing.T, c net.Conn) <-chan msg.SResult {
	t.Helper()
	out := make(chan msg.SResult, 16)
	go func() {
		defer close(out)
		br := bufio.NewReader(c)
		for {
			op, payload, err := ReadFrame(br)
			if err != nil {
				return
			}
			if op != msg.SOpQuery {
				t.Errorf("unexpected reply op %d", op)
				return
			}
			var res msg.SResult
			r := wire.NewReader(payload)
			res.Decode(r)
			if err := r.Finish(); err != nil {
				t.Errorf("bad reply payload: %v", err)
				return
			}
			out <- res
		}
	}()
	return out
}

func encodeQuery(q *msg.SQuery[float32]) []byte {
	var w wire.Writer
	q.Encode(&w)
	return append([]byte(nil), w.Bytes()...)
}

// TestAdmissionRejections pins the typed-rejection semantics
// deterministically: the scheduler is intentionally not running, so a
// full queue stays full and every admission outcome is forced, not
// raced.
func TestAdmissionRejections(t *testing.T) {
	src := testSource(t, 50, 4, 4)
	s := &Server[float32]{
		cfg:  Config{}.withDefaults(),
		src:  src,
		dim:  4,
		elem: "float32",
		m:    &Metrics{},
		gate: newDrainGate(),
		stop: make(chan struct{}),
	}
	s.cur.Store(&snapshot[float32]{graph: src.Graph, data: src.Data, quant: src.Quant})
	// One lane, depth-1 shard, no laneLoop running: a full queue stays
	// full, so every admission outcome below is forced.
	s.m.Lanes = make([]LaneStat, 1)
	s.lanes = []*lane[float32]{{queue: make(chan *request[float32], 1), stat: &s.m.Lanes[0]}}
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	sc := &serverConn{c: server}
	replies := collectReplies(t, client)

	var q msg.SQuery[float32]
	var scratch []float32
	handle := func(payload []byte) bool {
		return s.handleQuery(sc, payload, &q, &scratch)
	}
	mk := func(id uint64) []byte {
		return encodeQuery(&msg.SQuery[float32]{ID: id, L: 4, Vec: src.Data[0]})
	}
	expect := func(id uint64, status uint8) {
		t.Helper()
		select {
		case res := <-replies:
			if res.ID != id || res.Status != status {
				t.Fatalf("reply ID=%d status=%s, want ID=%d status=%s",
					res.ID, msg.SStatusName(res.Status), id, msg.SStatusName(status))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no reply for ID %d (rejection must never hang)", id)
		}
	}

	if !handle(mk(1)) { // fills the queue, no reply yet
		t.Fatalf("first query should be admitted")
	}
	if !handle(mk(2)) { // queue full
		t.Fatalf("overload reply failed")
	}
	expect(2, msg.SStatusOverloaded)

	s.gate.mu.Lock()
	s.gate.draining = true
	s.gate.mu.Unlock()
	if !handle(mk(3)) {
		t.Fatalf("draining reply failed")
	}
	expect(3, msg.SStatusDraining)
	s.gate.mu.Lock()
	s.gate.draining = false
	s.gate.mu.Unlock()

	// Wrong dimensionality is a bad request, not a crash.
	if !handle(encodeQuery(&msg.SQuery[float32]{ID: 4, L: 4, Vec: []float32{1}})) {
		t.Fatalf("bad-request reply failed")
	}
	expect(4, msg.SStatusBadRequest)
	// So is an L larger than the dataset.
	if !handle(encodeQuery(&msg.SQuery[float32]{ID: 5, L: 1000, Vec: src.Data[0]})) {
		t.Fatalf("bad-L reply failed")
	}
	expect(5, msg.SStatusBadRequest)

	m := s.m
	if m.Accepted.Load() != 1 || m.RejectedOverload.Load() != 1 ||
		m.RejectedDraining.Load() != 1 || m.RejectedBad.Load() != 2 {
		t.Fatalf("counters: accepted=%d overload=%d draining=%d bad=%d",
			m.Accepted.Load(), m.RejectedOverload.Load(),
			m.RejectedDraining.Load(), m.RejectedBad.Load())
	}
	// Balance the admitted request's gate entry (nothing will run it).
	s.gate.leave()
}

// TestDeadlineSemantics: a query whose deadline expired in the queue
// is dropped with SStatusDeadline; one that expires mid-execution
// returns its best-so-far with SStatusPartial.
func TestDeadlineSemantics(t *testing.T) {
	src := testSource(t, 300, 8, 8)
	s, err := New(src, Config{Workers: 1, Executors: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	}()

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	sc := &serverConn{c: server}
	replies := collectReplies(t, client)
	now := time.Now()

	// Expired while queued: dropped before execution.
	s.gate.enter()
	s.m.InFlight.Add(1)
	s.runBatch(s.lanes[0], []*request[float32]{{
		conn: sc, id: 10, l: 8, vec: src.Data[0],
		deadline: now.Add(-time.Millisecond), enq: now.Add(-2 * time.Millisecond),
	}})
	res := <-replies
	if res.ID != 10 || res.Status != msg.SStatusDeadline || len(res.Neighbors) != 0 {
		t.Fatalf("queued-expiry reply: ID=%d status=%s neighbors=%d",
			res.ID, msg.SStatusName(res.Status), len(res.Neighbors))
	}
	if s.m.DeadlineDropped.Load() != 1 {
		t.Fatalf("DeadlineDropped = %d", s.m.DeadlineDropped.Load())
	}

	// Expired mid-execution: the interrupt fires at the first expansion,
	// leaving the seeded candidates as a partial answer.
	s.gate.enter()
	s.m.InFlight.Add(1)
	s.runOne(s.lanes[0].sctx[0], &request[float32]{
		conn: sc, id: 11, l: 8, vec: src.Data[0],
		deadline: now, enq: now,
	}, nil, s.cur.Load())
	res = <-replies
	if res.ID != 11 || res.Status != msg.SStatusPartial {
		t.Fatalf("mid-exec expiry reply: ID=%d status=%s", res.ID, msg.SStatusName(res.Status))
	}
	if len(res.Neighbors) == 0 {
		t.Fatalf("partial reply carried no best-so-far results")
	}
	if s.m.DeadlineTruncated.Load() != 1 {
		t.Fatalf("DeadlineTruncated = %d", s.m.DeadlineTruncated.Load())
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s, err := New(testSource(t, 60, 4, 4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
