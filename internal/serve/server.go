package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dnnd/internal/engine"
	"dnnd/internal/knng"
	"dnnd/internal/metric"
	"dnnd/internal/metric/quant"
	"dnnd/internal/msg"
	"dnnd/internal/obs"
	"dnnd/internal/search"
	"dnnd/internal/wire"
)

// Source is the read-only index a Server answers queries against —
// the graph, its dataset, and the metric they were built with. The
// command-line server fills it from a persisted datastore
// (dnnd.LoadWithMeta); tests fill it from an in-memory build.
type Source[T wire.Scalar] struct {
	Graph   *knng.Graph
	Data    [][]T
	Dist    metric.Func[T]
	Metric  string
	K       int
	Refined bool
	// Quant, when non-nil, routes queries through the quantized
	// first-pass traversal (code-distance scoring + exact re-rank of
	// the over-fetched candidates; see search.QueryQuant). Build one
	// with quant.NewView over Data. L2-family metrics only.
	Quant *quant.View
}

// Config tunes the request scheduler. The zero value of every field
// selects a production-reasonable default (see New).
type Config struct {
	// L and Epsilon are the search defaults for queries that do not
	// specify their own (defaults 10 and 0.1).
	L       int
	Epsilon float64
	// QueueDepth bounds the admission queue; a query arriving at a
	// full queue is rejected immediately with SStatusOverloaded
	// (default 1024). This is the backpressure signal: clients seeing
	// overload rejections must slow down.
	QueueDepth int
	// BatchMax caps the number of queued queries coalesced into one
	// micro-batch (default 16).
	BatchMax int
	// BatchWait is the optional assembly window: after taking the
	// first query of a batch and greedily draining whatever else is
	// queued, the lane waits up to BatchWait for the batch to fill.
	// The default of 0 is purely dynamic batching — batch size tracks
	// queue depth with zero added latency when idle.
	BatchWait time.Duration
	// Lanes is the number of independent dispatch lanes. Each lane owns
	// a shard of the admission queue, its own micro-batch assembly loop,
	// its own engine.Pool, and one pooled search.Context per pool
	// worker, so batch formation and execution never serialize across
	// lanes. Defaults to Executors for compatibility with pre-lane
	// configs (and Executors defaults to 2).
	Lanes int
	// Executors is the legacy name for the batch-level parallelism knob;
	// it now only seeds the Lanes default. Kept so existing configs and
	// flags keep their meaning: N executors become N lanes.
	Executors int
	// Workers is the per-lane worker-pool width used to evaluate a
	// batch's queries in parallel (default GOMAXPROCS/Lanes, min 1),
	// reusing internal/engine's pool. Total search parallelism is
	// Lanes × Workers.
	Workers int
	// DefaultDeadline applies to queries that do not carry their own
	// (0 = no deadline). MaxDeadline caps client-requested deadlines
	// (0 = uncapped). A query whose deadline expires while queued is
	// dropped with SStatusDeadline; one that expires mid-traversal
	// returns its best-so-far results with SStatusPartial.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// WarmEntries is the capacity of the warm entry-point cache fed by
	// recent query results and served to queries that set SFlagWarm
	// (0 disables the cache).
	WarmEntries int
	// WriteTimeout bounds each reply write (default 30s; negative
	// disables), so a client that stops reading cannot wedge a lane —
	// or a drain — behind a full TCP send buffer.
	WriteTimeout time.Duration
	// Trace, when non-nil, receives the server's span timeline:
	// "serve.query" async spans covering each admitted request from
	// admission to reply (async because requests overlap freely across
	// lanes) and a "serve.inflight" counter track. A nil Track costs
	// one nil check per request.
	Trace *obs.Track
	// Tracer, when non-nil, additionally gives every lane its own
	// "serve.laneN" track recording one "serve.batch" span per executed
	// micro-batch (argument = live batch size), so per-lane utilization
	// and batch shapes are visible on the trace timeline.
	Tracer *obs.Tracer
	// execHook, when non-nil, runs at the start of every batch
	// execution. Tests use it to stall the executors and force
	// deterministic queue overflow; it is deliberately unexported.
	execHook func()
}

func (c Config) withDefaults() Config {
	if c.L <= 0 {
		c.L = 10
	}
	if c.Epsilon < 0 {
		c.Epsilon = 0
	} else if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.Lanes <= 0 {
		c.Lanes = c.Executors
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0) / c.Lanes
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	} else if c.WriteTimeout < 0 {
		c.WriteTimeout = 0
	}
	return c
}

// snapshot is one immutable published version of the served index. The
// server holds the current one behind an atomic pointer; queries pin
// it once per batch and never observe a torn mix of graph, dataset,
// and tombstones. Snapshots are never mutated after publication —
// except tombs, whose bit-set operations are individually atomic by
// design so deletes become visible to in-flight readers immediately.
// Old snapshots are reclaimed by the garbage collector once the last
// pinned batch drops its pointer (RCU with the GC as the grace period).
type snapshot[T wire.Scalar] struct {
	graph *knng.Graph
	data  [][]T
	tombs *knng.TombSet // nil on frozen (immutable) servers
	quant *quant.View
	gen   uint64
}

// request is one admitted query flowing through the scheduler.
// Requests are pooled (getRequest/putRequest): vec is the request's
// own reusable storage (the borrowed decode buffer is copied into it,
// because the reader loop overwrites the frame buffer while the
// request waits in a lane queue), and res is filled in place by the
// lane worker so the reply needs no per-query allocation either.
type request[T wire.Scalar] struct {
	conn     *serverConn
	id       uint64
	seed     int64
	l        int
	eps      float64
	warm     bool
	vec      []T
	deadline time.Time // zero = none
	enq      time.Time
	span     obs.Span    // serve.query async span, ended by finish
	tctx     msg.STrace  // propagated trace context (zero when untraced)
	res      msg.SResult // reply under construction, encoded by finish
}

// serverConn wraps one client connection: reads happen on the
// connection's reader goroutine, reply writes are serialized by wmu
// (lane workers write completions, the reader writes rejections and
// control replies).
type serverConn struct {
	c        net.Conn
	wtimeout time.Duration
	wmu      sync.Mutex
	wbuf     []byte
	w        wire.Writer // wraps wbuf during writeResult
}

func (sc *serverConn) writeFrame(op uint8, payload []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if sc.wtimeout > 0 {
		sc.c.SetWriteDeadline(time.Now().Add(sc.wtimeout))
	}
	sc.wbuf = AppendFrame(sc.wbuf[:0], op, payload)
	_, err := sc.c.Write(sc.wbuf)
	return err
}

// writeResult encodes res directly into the connection's pooled write
// buffer behind a frame-header placeholder, backpatches the length,
// and writes the frame — no intermediate payload slice, no copy (the
// PR 6 AsyncWriter pattern, via wire.Writer.Wrap). Serialized on wmu
// with writeFrame like every other reply.
func (sc *serverConn) writeResult(op uint8, res *msg.SResult) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.wbuf = append(sc.wbuf[:0], 0, 0, 0, 0, op)
	sc.w.Wrap(sc.wbuf)
	res.Encode(&sc.w)
	out := sc.w.Bytes()
	binary.LittleEndian.PutUint32(out[:4], uint32(len(out)-4))
	sc.wbuf = out[:0] // keep the grown storage for the next reply
	if sc.wtimeout > 0 {
		sc.c.SetWriteDeadline(time.Now().Add(sc.wtimeout))
	}
	_, err := sc.c.Write(out)
	return err
}

// drainGate atomically couples the draining flag with the count of
// admitted-but-unanswered requests. A WaitGroup cannot express this:
// Add racing with Wait at counter zero is a data race, and the
// draining check and the increment have to be one atomic step anyway
// so that a request admitted concurrently with a drain is always
// waited for.
type drainGate struct {
	mu       sync.Mutex
	n        int64
	draining bool
	idle     chan struct{} // closed once draining && n == 0
}

func newDrainGate() *drainGate {
	return &drainGate{idle: make(chan struct{})}
}

// enter admits one request; it reports false if the gate is draining.
func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.n++
	return true
}

// leave retires one admitted request. Exactly one of leave and drain
// observes the final draining && n == 0 state, so idle is closed once.
func (g *drainGate) leave() {
	g.mu.Lock()
	g.n--
	if g.draining && g.n == 0 {
		close(g.idle)
	}
	g.mu.Unlock()
}

// drain flips the gate shut and returns a channel that is closed once
// every admitted request has left.
func (g *drainGate) drain() <-chan struct{} {
	g.mu.Lock()
	if !g.draining {
		g.draining = true
		if g.n == 0 {
			close(g.idle)
		}
	}
	g.mu.Unlock()
	return g.idle
}

func (g *drainGate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Server is a long-lived query server over one index. Create with
// New, run with Serve, stop with Shutdown.
type Server[T wire.Scalar] struct {
	cfg  Config
	src  Source[T]
	dim  int
	elem string

	// cur is the currently published index snapshot. The hot path only
	// ever Loads it (once per batch); publication is a single Store in
	// the refiner (see mutable.go), so queries concurrent with a swap
	// run to completion against whichever complete version they pinned.
	cur atomic.Pointer[snapshot[T]]
	mut *mutable[T] // nil until EnableMutation

	m    *Metrics
	warm *warmCache

	lanes   []*lane[T]
	rr      atomic.Uint32 // round-robin admission cursor
	reqPool sync.Pool     // recycled *request[T]

	gate     *drainGate
	stop     chan struct{}  // closed after the lane queues fully drain
	loopWG   sync.WaitGroup // lane loops
	connWG   sync.WaitGroup
	connMu   sync.Mutex
	conns    map[*serverConn]struct{}
	ln       net.Listener
	lnMu     sync.Mutex
	shutOnce sync.Once
}

// New builds a Server over src. It validates the source and spins up
// the dispatch lanes (each with its own queue shard, worker pool, and
// pooled search contexts); the server starts accepting connections
// when Serve is called.
func New[T wire.Scalar](src Source[T], cfg Config) (*Server[T], error) {
	if src.Graph == nil || src.Dist == nil {
		return nil, errors.New("serve: Source needs a Graph and a Dist")
	}
	if src.Graph.NumVertices() != len(src.Data) {
		return nil, fmt.Errorf("serve: graph has %d vertices but dataset has %d rows",
			src.Graph.NumVertices(), len(src.Data))
	}
	if len(src.Data) == 0 {
		return nil, errors.New("serve: empty dataset")
	}
	cfg = cfg.withDefaults()
	s := &Server[T]{
		cfg:   cfg,
		src:   src,
		dim:   len(src.Data[0]),
		elem:  elemName[T](),
		m:     &Metrics{},
		gate:  newDrainGate(),
		stop:  make(chan struct{}),
		conns: make(map[*serverConn]struct{}),
	}
	s.cur.Store(&snapshot[T]{graph: src.Graph, data: src.Data, quant: src.Quant})
	// The admission queue is sharded across lanes; QueueDepth splits
	// evenly (min 1 per lane) so the configured bound keeps its meaning.
	laneDepth := cfg.QueueDepth / cfg.Lanes
	if laneDepth < 1 {
		laneDepth = 1
	}
	s.m.QueueCap = laneDepth * cfg.Lanes
	s.m.QueueDepth = s.queueLen
	s.m.Lanes = make([]LaneStat, cfg.Lanes)
	if cfg.WarmEntries > 0 {
		s.warm = newWarmCache(cfg.WarmEntries)
		s.m.WarmCacheSize = s.warm.size
	}
	s.lanes = make([]*lane[T], cfg.Lanes)
	for i := range s.lanes {
		ln := &lane[T]{
			queue: make(chan *request[T], laneDepth),
			pool:  engine.NewPool(engine.PoolConfig[T]{Workers: cfg.Workers, Dim: s.dim}),
			sctx:  make([]*search.Context[T], cfg.Workers),
			batch: make([]*request[T], 0, cfg.BatchMax),
			stat:  &s.m.Lanes[i],
		}
		for w := range ln.sctx {
			ln.sctx[w] = search.NewContext[T]()
		}
		q := ln.queue
		ln.stat.Depth = func() int { return len(q) }
		// Bound once so batch execution never allocates a closure: the
		// body reads the lane's current batch through mutable fields,
		// the same trick search.Context plays with its score closures.
		ln.runBody = func(w, i int) { s.runOne(ln.sctx[w], ln.live[i], ln.warmSnap, ln.snap) }
		if cfg.Tracer != nil {
			ln.track = cfg.Tracer.Track(fmt.Sprintf("serve.lane%d", i), 1+i)
		}
		s.lanes[i] = ln
		s.loopWG.Add(1)
		go s.laneLoop(ln)
	}
	return s, nil
}

// queueLen sums the lane queue depths (the instantaneous admission
// backlog gauge).
func (s *Server[T]) queueLen() int {
	n := 0
	for _, ln := range s.lanes {
		n += len(ln.queue)
	}
	return n
}

// getRequest takes a recycled request or allocates the pool's first.
func (s *Server[T]) getRequest() *request[T] {
	if r, ok := s.reqPool.Get().(*request[T]); ok {
		return r
	}
	return &request[T]{}
}

// putRequest recycles a finished (or rejected) request. References
// into connection state and search scratch are dropped so the pool
// never pins them; vec keeps its capacity for the next query.
func (s *Server[T]) putRequest(r *request[T]) {
	r.conn = nil
	r.span = obs.Span{}
	r.tctx = msg.STrace{}
	r.res.Neighbors = nil
	s.reqPool.Put(r)
}

// echoTrace stamps the reply's trace echo: the client's trace ID back,
// plus this server's serve.query span ID so the router (or tracecheck
// -merge) can stitch the cross-process parent edge. On an untraced
// server the span ID is simply 0 — the echo still confirms the trace
// ID reached the shard. A request without a trace context leaves the
// reply on the pre-PR-10 layout entirely.
func (r *request[T]) echoTrace() {
	if r.tctx.TraceID == 0 {
		return
	}
	r.res.Trace = msg.STrace{
		TraceID: r.tctx.TraceID,
		SpanID:  r.span.TraceCtx().SpanID,
		Sampled: r.tctx.Sampled,
	}
}

func elemName[T wire.Scalar]() string {
	var z T
	switch any(z).(type) {
	case float32:
		return "float32"
	case uint8:
		return "uint8"
	default:
		return "uint32"
	}
}

// Metrics exposes the server's observability surface.
func (s *Server[T]) Metrics() *Metrics { return s.m }

// Serve accepts connections on ln until Shutdown closes it. It
// returns nil on a clean shutdown.
func (s *Server[T]) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.gate.isDraining() {
				return nil
			}
			return err
		}
		sc := &serverConn{c: c, wtimeout: s.cfg.WriteTimeout}
		s.connMu.Lock()
		s.conns[sc] = struct{}{}
		s.connMu.Unlock()
		s.m.Conns.Add(1)
		s.m.ConnsTotal.Add(1)
		s.connWG.Add(1)
		go s.handleConn(sc)
	}
}

// handleConn is the per-connection reader loop.
func (s *Server[T]) handleConn(sc *serverConn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, sc)
		s.connMu.Unlock()
		s.m.Conns.Add(-1)
		sc.c.Close()
		s.connWG.Done()
	}()
	br := newConnReader(sc.c)
	var (
		w       wire.Writer
		rbuf    []byte        // reused frame payload buffer
		q       msg.SQuery[T] // reused query decode target
		scratch []T           // borrowed-vector decode scratch (wide scalars)
	)
	for {
		op, payload, err := ReadFrameInto(br, &rbuf)
		if err != nil {
			return // EOF, client reset, or garbage framing: drop the conn
		}
		switch op {
		case msg.SOpHello:
			s.m.Hellos.Add(1)
			reply := msg.SHelloReply{
				Elem:           s.elem,
				Metric:         s.src.Metric,
				N:              uint32(len(s.cur.Load().data)),
				Dim:            uint32(s.dim),
				K:              uint32(s.src.K),
				Refined:        s.src.Refined,
				DefaultL:       uint32(s.cfg.L),
				DefaultEpsilon: float32(s.cfg.Epsilon),
			}
			w.Reset()
			reply.Encode(&w)
			if sc.writeFrame(msg.SOpHello, w.Bytes()) != nil {
				return
			}
		case msg.SOpHealth:
			s.m.HealthProbes.Add(1)
			if sc.writeFrame(msg.SOpHealth, []byte(s.healthText())) != nil {
				return
			}
		case msg.SOpStats:
			s.m.StatsDumps.Add(1)
			if sc.writeFrame(msg.SOpStats, []byte(s.m.Dump())) != nil {
				return
			}
		case msg.SOpMetrics:
			s.m.StatsDumps.Add(1)
			dump, err := json.Marshal(s.m.Registry().FullDump())
			if err != nil {
				return
			}
			if sc.writeFrame(msg.SOpMetrics, dump) != nil {
				return
			}
		case msg.SOpQuery:
			if !s.handleQuery(sc, payload, &q, &scratch) {
				return
			}
		case msg.SOpIngest, msg.SOpDelete, msg.SOpFlush:
			if !s.handleMutation(sc, op, payload, &w) {
				return
			}
		default:
			return // unknown op: protocol error, drop the conn
		}
	}
}

// handleQuery decodes and admits one query; it reports whether the
// connection is still usable. q and scratch are the connection's
// reused decode state: the decoded vector borrows the frame buffer
// (or scratch) and is copied into the pooled request's own storage,
// since the reader overwrites the frame buffer while the request
// waits in a lane queue.
func (s *Server[T]) handleQuery(sc *serverConn, payload []byte, q *msg.SQuery[T], scratch *[]T) bool {
	r := wire.NewReader(payload)
	*scratch = q.DecodeBorrow(r, *scratch)
	if r.Finish() != nil || len(q.Vec) != s.dim || int64(q.L) > int64(len(s.cur.Load().data)) {
		s.m.RejectedBad.Add(1)
		return s.reject(sc, q.ID, msg.SStatusBadRequest)
	}
	now := time.Now()
	req := s.getRequest()
	req.conn = sc
	req.id = q.ID
	req.seed = q.Seed
	req.l = int(q.L)
	req.eps = float64(q.Epsilon)
	req.warm = q.Flags&msg.SFlagWarm != 0 && s.warm != nil
	req.vec = append(req.vec[:0], q.Vec...)
	req.deadline = time.Time{}
	req.enq = now
	req.tctx = q.Trace
	if req.l == 0 {
		req.l = s.cfg.L
	}
	if q.Epsilon == 0 {
		req.eps = s.cfg.Epsilon
	}
	dl := s.cfg.DefaultDeadline
	if q.DeadlineMicros > 0 {
		dl = time.Duration(q.DeadlineMicros) * time.Microsecond
		if s.cfg.MaxDeadline > 0 && dl > s.cfg.MaxDeadline {
			dl = s.cfg.MaxDeadline
		}
	}
	if dl > 0 {
		req.deadline = now.Add(dl)
	}

	// Admission. The gate makes the draining check and the in-flight
	// increment one atomic step: a request it admits is guaranteed to
	// be waited for by a concurrent drain (see Shutdown), so an
	// admitted query is never dropped.
	if !s.gate.enter() {
		s.putRequest(req)
		s.m.RejectedDraining.Add(1)
		return s.reject(sc, q.ID, msg.SStatusDraining)
	}
	// The span must be attached before the enqueue: once the request
	// is on a lane queue a worker may finish (and End the span) at any
	// moment. A span that is never Ended (the overload branch) records
	// nothing. A sampled propagated context opens the span under the
	// remote parent (the router's per-replica attempt span), stitching
	// this process into the distributed trace; everything else keeps
	// the local async span.
	if req.tctx.TraceID != 0 && req.tctx.Sampled {
		req.span = s.cfg.Trace.BeginTraced("serve.query",
			obs.TraceCtx{TraceID: req.tctx.TraceID, SpanID: req.tctx.SpanID, Sampled: true})
	} else {
		req.span = s.cfg.Trace.BeginAsync("serve.query", int64(req.id))
	}
	// Sharded admission: start at the round-robin lane, then sweep the
	// others, so one hot lane spills before anything is rejected.
	// Overload means every lane's shard is full.
	li := int(s.rr.Add(1)-1) % len(s.lanes)
	for k := 0; k < len(s.lanes); k++ {
		select {
		case s.lanes[(li+k)%len(s.lanes)].queue <- req:
			s.m.Accepted.Add(1)
			s.cfg.Trace.Counter("serve.inflight", s.m.InFlight.Add(1))
			if d := int64(s.queueLen()); d > s.m.QueueMax.Load() {
				s.m.QueueMax.Store(d) // racy max: close enough for a gauge
			}
			return true
		default:
		}
	}
	// Every lane full: typed overload rejection, never a block and
	// never silence. The client reads this as backpressure.
	s.gate.leave()
	s.putRequest(req)
	s.m.RejectedOverload.Add(1)
	return s.reject(sc, q.ID, msg.SStatusOverloaded)
}

// reject writes an immediate no-result reply; it reports whether the
// connection survived the write.
func (s *Server[T]) reject(sc *serverConn, id uint64, status uint8) bool {
	res := msg.SResult{ID: id, Status: status}
	return sc.writeResult(msg.SOpQuery, &res) == nil
}

func (s *Server[T]) healthText() string {
	state := "ok"
	if s.gate.isDraining() {
		state = "draining"
	}
	sn := s.cur.Load()
	mode := "frozen"
	if s.mut != nil {
		mode = "mutable"
	}
	// now= is the server's wall clock at reply time: one half of the
	// NTP-style offset estimate the router keeps per replica (probe
	// RTT midpoint vs reported remote time). Unknown keys are ignored
	// by older parsers, so the health line stays forward-compatible.
	return fmt.Sprintf("%s n=%d dim=%d elem=%s metric=%s lanes=%d inflight=%d queue=%d/%d mode=%s gen=%d now=%d\n",
		state, len(sn.data), s.dim, s.elem, s.src.Metric, len(s.lanes),
		s.m.InFlight.Load(), s.queueLen(), s.m.QueueCap, mode, sn.gen, time.Now().UnixNano())
}

// Shutdown gracefully drains the server (the SIGTERM path): stop
// accepting connections, reject new queries with SStatusDraining,
// wait until every admitted query has been answered, then stop the
// scheduler and close all connections. Zero admitted requests are
// dropped. ctx bounds the wait; on expiry the server stops hard and
// ctx.Err() is returned.
func (s *Server[T]) Shutdown(ctx context.Context) error {
	var err error
	s.shutOnce.Do(func() {
		drained := s.gate.drain()
		s.lnMu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		s.lnMu.Unlock()

		select {
		case <-drained:
		case <-ctx.Done():
			err = ctx.Err()
		}

		// The lane queues are empty now (or we gave up waiting): stop
		// the lane loops, then their worker pools.
		close(s.stop)
		s.loopWG.Wait()
		for _, ln := range s.lanes {
			ln.pool.Shutdown()
		}
		// Stop the refiner (if any). New mutations were already being
		// rejected with SStatusDraining once the gate flipped; a
		// refinement in progress runs to completion and publishes.
		if s.mut != nil {
			s.mut.stopRefiner()
		}

		// Finally drop the client connections; their readers exit.
		s.connMu.Lock()
		for sc := range s.conns {
			sc.c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
	})
	return err
}
