package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"dnnd/internal/msg"
	"dnnd/internal/obs"
)

// TestServeRequestTracing pins the server's span timeline: admitted
// requests record overlapping "serve.query" async spans (one per
// request, admission to reply) plus a "serve.inflight" counter track,
// and the export validates as Perfetto JSON.
func TestServeRequestTracing(t *testing.T) {
	const nq = 64
	src := testSource(t, 600, 8, 6)
	tr := obs.NewTracer(1 << 12)
	track := tr.Track("serve", 0)

	s, err := New(src, Config{
		L: 10, QueueDepth: 256, BatchMax: 8, Executors: 2, Workers: 2,
		Trace: track,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Shutdown(context.Background())

	queries := randData(nq, 8, 77)
	rep, err := RunLoad[float32](LoadConfig{
		Addr:        ln.Addr().String(),
		Requests:    nq,
		Concurrency: 16,
		L:           10,
		Seed:        1,
		DialTimeout: 5 * time.Second,
	}, queries)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByStatus["ok"] != nq {
		t.Fatalf("load report: %+v", rep.ByStatus)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := obs.DecodeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	if _, err := doc.Validate(); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if got := doc.AsyncSpanNames()["serve.query"]; got != nq {
		t.Errorf("serve.query spans = %d, want %d", got, nq)
	}
	// Two counter samples per admitted request (admission and reply).
	if got := doc.CounterNames()["serve.inflight"]; got != 2*nq {
		t.Errorf("serve.inflight samples = %d, want %d", got, 2*nq)
	}
}

// TestServeTracePropagation pins the distributed-trace contract on the
// serve side: a query carrying a sampled trace context gets its
// serve.query span recorded as a KindTraced span parented on the
// remote (router) span, and the reply echoes the trace ID with the
// server's own span ID so the caller can stitch the edge. An untraced
// query on the same connection stays on the local async-span path and
// the pre-PR-10 reply layout.
func TestServeTracePropagation(t *testing.T) {
	src := testSource(t, 600, 8, 6)
	tr := obs.NewTracer(1 << 10)
	track := tr.Track("serve", 0)
	s, err := New(src, Config{
		L: 10, QueueDepth: 64, BatchMax: 4, Executors: 1, Workers: 1,
		Trace: track,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Shutdown(context.Background())

	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	queries := randData(2, 8, 99)
	parent := obs.TraceCtx{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}
	q := msg.SQuery[float32]{ID: 1, L: 10, Vec: queries[0]}
	q.SetTrace(msg.STrace{TraceID: parent.TraceID, SpanID: parent.SpanID, Sampled: true})
	res, err := Do(c, &q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != msg.SStatusOK {
		t.Fatalf("traced query status = %d", res.Status)
	}
	if res.Trace.TraceID != parent.TraceID || !res.Trace.Sampled {
		t.Fatalf("reply trace echo = %+v, want trace %x", res.Trace, parent.TraceID)
	}
	if res.Trace.SpanID == 0 {
		t.Fatalf("tracing server echoed no span ID")
	}

	q2 := msg.SQuery[float32]{ID: 2, L: 10, Vec: queries[1]}
	res2, err := Do(c, &q2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != (msg.STrace{}) {
		t.Fatalf("untraced query got a trace echo: %+v", res2.Trace)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := obs.DecodeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	spans := doc.TracedSpans()
	if len(spans) != 1 {
		t.Fatalf("traced spans = %d, want 1 (untraced query must not emit one)", len(spans))
	}
	sp := spans[0]
	if sp.Name != "serve.query" || sp.Trace != parent.TraceID || sp.Parent != parent.SpanID {
		t.Fatalf("serve.query span not parented on remote ctx: %+v", sp)
	}
	if sp.Span != res.Trace.SpanID {
		t.Fatalf("recorded span %x != echoed span %x", sp.Span, res.Trace.SpanID)
	}
}

// TestServeMetricsOp: SOpMetrics returns the registry's FullDump as
// JSON — the mergeable scrape the router federates.
func TestServeMetricsOp(t *testing.T) {
	src := testSource(t, 600, 8, 6)
	s, err := New(src, Config{L: 10, QueueDepth: 64, Executors: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Shutdown(context.Background())

	c, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	queries := randData(1, 8, 5)
	if _, err := Do(c, &msg.SQuery[float32]{ID: 1, L: 10, Vec: queries[0]}); err != nil {
		t.Fatal(err)
	}

	raw, err := c.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var dump obs.FullDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("metrics reply not a FullDump: %v\n%s", err, raw)
	}
	if dump.Samples[`dnnd_serve_queries_total{status="ok"}`] != 1 {
		t.Fatalf("query counter missing from dump: %+v", dump.Samples)
	}
	if h, ok := dump.Hists["dnnd_serve_latency_usec"]; !ok || h.Count != 1 {
		t.Fatalf("latency hist missing from dump: %+v", dump.Hists)
	}
}
