package serve

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"dnnd/internal/obs"
)

// TestServeRequestTracing pins the server's span timeline: admitted
// requests record overlapping "serve.query" async spans (one per
// request, admission to reply) plus a "serve.inflight" counter track,
// and the export validates as Perfetto JSON.
func TestServeRequestTracing(t *testing.T) {
	const nq = 64
	src := testSource(t, 600, 8, 6)
	tr := obs.NewTracer(1 << 12)
	track := tr.Track("serve", 0)

	s, err := New(src, Config{
		L: 10, QueueDepth: 256, BatchMax: 8, Executors: 2, Workers: 2,
		Trace: track,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Shutdown(context.Background())

	queries := randData(nq, 8, 77)
	rep, err := RunLoad[float32](LoadConfig{
		Addr:        ln.Addr().String(),
		Requests:    nq,
		Concurrency: 16,
		L:           10,
		Seed:        1,
		DialTimeout: 5 * time.Second,
	}, queries)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByStatus["ok"] != nq {
		t.Fatalf("load report: %+v", rep.ByStatus)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := obs.DecodeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	if _, err := doc.Validate(); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if got := doc.AsyncSpanNames()["serve.query"]; got != nq {
		t.Errorf("serve.query spans = %d, want %d", got, nq)
	}
	// Two counter samples per admitted request (admission and reply).
	if got := doc.CounterNames()["serve.inflight"]; got != 2*nq {
		t.Errorf("serve.inflight samples = %d, want %d", got, 2*nq)
	}
}
