// Package shard holds the shard manifest shared between the offline
// splitter (dnnd.Split, in the root package) and the online cluster
// router (internal/router). It is deliberately a leaf package — no
// serve or router dependency — so the root package can write manifests
// without dragging the whole cluster runtime into its import graph.
package shard

import (
	"fmt"

	"dnnd/internal/knng"
	"dnnd/internal/metall"
	"dnnd/internal/wire"
)

// ManifestObject is the metall object name the manifest is stored
// under (its own datastore directory, sibling to the shard stores).
const ManifestObject = "router-manifest"

const (
	manifestMagic   uint32 = 0x444e524d // "DNRM" little-endian
	manifestVersion uint32 = 1
)

// ShardInfo describes one shard's slice of the split dataset. Globals
// is the local→global ID map: the point a shard serves under local ID
// i is global point Globals[i]. Count duplicates len(Globals) on the
// wire so a truncated Globals table is caught as an inconsistency, not
// silently served.
type ShardInfo struct {
	Count   uint32
	Globals []knng.ID
}

// Manifest is the persisted description of a split: which global IDs
// live on which shard, plus the cluster-wide shape (element type,
// metric, dimensionality, construction k) a router needs to validate
// queries and synthesize hello replies without touching any shard.
type Manifest struct {
	Elem    string // "float32" | "uint8" | "uint32"
	Metric  string
	K       uint32
	Dim     uint32
	N       uint32 // total points; shard counts sum to it
	Refined bool
	Shards  []ShardInfo
}

// ElemSize returns the on-wire bytes per vector element, or 0 for an
// unknown element name.
func (m *Manifest) ElemSize() int {
	switch m.Elem {
	case "float32", "uint32":
		return 4
	case "uint8":
		return 1
	default:
		return 0
	}
}

func (m *Manifest) Encode(w *wire.Writer) {
	w.Uint32(manifestMagic)
	w.Uint32(manifestVersion)
	w.String(m.Elem)
	w.String(m.Metric)
	w.Uint32(m.K)
	w.Uint32(m.Dim)
	w.Uint32(m.N)
	w.Bool(m.Refined)
	w.Uint32(uint32(len(m.Shards)))
	for _, sh := range m.Shards {
		w.Uint32(sh.Count)
		w.Uint32s(sh.Globals)
	}
}

func (m *Manifest) Decode(r *wire.Reader) {
	if r.Uint32() != manifestMagic && r.Err() == nil {
		r.Reset(nil)
		r.Uint8() // force the error state: wrong magic
		return
	}
	if v := r.Uint32(); v != manifestVersion && r.Err() == nil {
		r.Reset(nil)
		r.Uint8()
		return
	}
	m.Elem = r.String()
	m.Metric = r.String()
	m.K = r.Uint32()
	m.Dim = r.Uint32()
	m.N = r.Uint32()
	m.Refined = r.Bool()
	// Each shard carries at least its count word and the Globals length
	// prefix — the floor that keeps a corrupt shard count from forcing
	// a huge allocation.
	ns := r.Count(8)
	if r.Err() != nil {
		m.Shards = nil
		return
	}
	m.Shards = make([]ShardInfo, 0, ns)
	for i := 0; i < ns; i++ {
		var sh ShardInfo
		sh.Count = r.Uint32()
		sh.Globals = r.Uint32s()
		m.Shards = append(m.Shards, sh)
	}
}

// Validate checks the manifest's internal consistency: a known element
// type, per-shard counts matching their Globals tables, and the tables
// together forming exactly a permutation of [0, N). A router refuses
// to start on anything less — serving through a corrupt ID map would
// silently return wrong neighbors, the worst possible failure mode.
func (m *Manifest) Validate() error {
	if m.ElemSize() == 0 {
		return fmt.Errorf("shard: manifest has unknown element type %q", m.Elem)
	}
	if m.Dim == 0 {
		return fmt.Errorf("shard: manifest has zero dimensionality")
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: manifest has no shards")
	}
	var total uint64
	for i, sh := range m.Shards {
		if int(sh.Count) != len(sh.Globals) {
			return fmt.Errorf("shard: shard %d count %d disagrees with its %d-entry global ID table",
				i, sh.Count, len(sh.Globals))
		}
		total += uint64(sh.Count)
	}
	if total != uint64(m.N) {
		return fmt.Errorf("shard: shard counts sum to %d, manifest N is %d", total, m.N)
	}
	seen := make([]bool, m.N)
	for i, sh := range m.Shards {
		for _, g := range sh.Globals {
			if uint32(g) >= m.N {
				return fmt.Errorf("shard: shard %d maps a local ID to out-of-range global %d (N=%d)",
					i, g, m.N)
			}
			if seen[g] {
				return fmt.Errorf("shard: global ID %d appears on more than one shard", g)
			}
			seen[g] = true
		}
	}
	return nil
}

// SaveManifest persists the manifest into a metall datastore directory
// (creating or updating it), with the same temp+rename commit
// discipline every other dnnd store uses.
func SaveManifest(dir string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	mgr, err := metall.OpenOrCreate(dir)
	if err != nil {
		return err
	}
	var w wire.Writer
	m.Encode(&w)
	if err := mgr.Put(ManifestObject, w.Bytes()); err != nil {
		mgr.Close()
		return err
	}
	return mgr.Close()
}

// LoadManifest reattaches to a manifest written by SaveManifest,
// rejecting anything that fails decoding or Validate.
func LoadManifest(dir string) (*Manifest, error) {
	mgr, err := metall.Open(dir)
	if err != nil {
		return nil, err
	}
	defer mgr.Close()
	raw, err := mgr.Get(ManifestObject)
	if err != nil {
		return nil, err
	}
	var m Manifest
	r := wire.NewReader(raw)
	m.Decode(r)
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("shard: corrupt manifest in %s: %w", dir, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
