// Package vecio reads and writes the vector file formats of the ANN
// benchmark ecosystem (TEXMEX / Big ANN Benchmarks): fvecs (float32),
// bvecs (uint8), and ivecs (int32, also used for uint32 ground-truth
// IDs and sparse sets). Each record is a little-endian int32 dimension
// followed by that many elements; dimensions may vary per record.
package vecio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrBadFormat reports a malformed vector file.
var ErrBadFormat = errors.New("vecio: bad format")

// maxDim bounds record dimensions to catch corrupt headers.
const maxDim = 1 << 24

// ReadFvecs decodes all float32 records from r.
func ReadFvecs(r io.Reader) ([][]float32, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var out [][]float32
	for {
		dim, err := readDim(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		vec := make([]float32, dim)
		if err := binary.Read(br, binary.LittleEndian, vec); err != nil {
			return nil, fmt.Errorf("%w: truncated fvecs record %d: %v", ErrBadFormat, len(out), err)
		}
		out = append(out, vec)
	}
}

// WriteFvecs encodes float32 records to w.
func WriteFvecs(w io.Writer, data [][]float32) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, vec := range data {
		if err := writeDim(bw, len(vec)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, vec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBvecs decodes all uint8 records from r.
func ReadBvecs(r io.Reader) ([][]uint8, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var out [][]uint8
	for {
		dim, err := readDim(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		vec := make([]uint8, dim)
		if _, err := io.ReadFull(br, vec); err != nil {
			return nil, fmt.Errorf("%w: truncated bvecs record %d: %v", ErrBadFormat, len(out), err)
		}
		out = append(out, vec)
	}
}

// WriteBvecs encodes uint8 records to w.
func WriteBvecs(w io.Writer, data [][]uint8) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, vec := range data {
		if err := writeDim(bw, len(vec)); err != nil {
			return err
		}
		if _, err := bw.Write(vec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIvecs decodes all uint32 records from r (ivecs files store
// int32; ground-truth IDs and set items are non-negative, so uint32 is
// the natural Go representation here).
func ReadIvecs(r io.Reader) ([][]uint32, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var out [][]uint32
	for {
		dim, err := readDim(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		vec := make([]uint32, dim)
		if err := binary.Read(br, binary.LittleEndian, vec); err != nil {
			return nil, fmt.Errorf("%w: truncated ivecs record %d: %v", ErrBadFormat, len(out), err)
		}
		out = append(out, vec)
	}
}

// WriteIvecs encodes uint32 records to w.
func WriteIvecs(w io.Writer, data [][]uint32) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, vec := range data {
		if err := writeDim(bw, len(vec)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, vec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func readDim(br *bufio.Reader) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("%w: truncated dimension header: %v", ErrBadFormat, err)
	}
	dim := int(int32(binary.LittleEndian.Uint32(hdr[:])))
	if dim < 0 || dim > maxDim {
		return 0, fmt.Errorf("%w: dimension %d out of range", ErrBadFormat, dim)
	}
	return dim, nil
}

func writeDim(bw *bufio.Writer, dim int) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(int32(dim)))
	_, err := bw.Write(hdr[:])
	return err
}

// File helpers ---------------------------------------------------------

// ReadFvecsFile reads an entire .fvecs file.
func ReadFvecsFile(path string) ([][]float32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f)
}

// WriteFvecsFile writes an entire .fvecs file.
func WriteFvecsFile(path string, data [][]float32) error {
	return writeFile(path, func(f *os.File) error { return WriteFvecs(f, data) })
}

// ReadBvecsFile reads an entire .bvecs file.
func ReadBvecsFile(path string) ([][]uint8, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBvecs(f)
}

// WriteBvecsFile writes an entire .bvecs file.
func WriteBvecsFile(path string, data [][]uint8) error {
	return writeFile(path, func(f *os.File) error { return WriteBvecs(f, data) })
}

// ReadIvecsFile reads an entire .ivecs file.
func ReadIvecsFile(path string) ([][]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIvecs(f)
}

// WriteIvecsFile writes an entire .ivecs file.
func WriteIvecsFile(path string, data [][]uint32) error {
	return writeFile(path, func(f *os.File) error { return WriteIvecs(f, data) })
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
