package vecio

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestFvecsRoundTrip(t *testing.T) {
	data := [][]float32{{1, 2, 3}, {4.5, -6.25}, {}}
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0]) != 3 || got[1][1] != -6.25 || len(got[2]) != 0 {
		t.Fatalf("round trip = %v", got)
	}
}

func TestBvecsRoundTrip(t *testing.T) {
	data := [][]uint8{{0, 128, 255}, {7}}
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][2] != 255 || got[1][0] != 7 {
		t.Fatalf("round trip = %v", got)
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	data := [][]uint32{{10, 20, 30}, {1 << 20}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][1] != 20 || got[1][0] != 1<<20 {
		t.Fatalf("round trip = %v", got)
	}
}

func TestEmptyFile(t *testing.T) {
	got, err := ReadFvecs(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty fvecs = %v, %v", got, err)
	}
}

func TestTruncatedRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	WriteFvecs(&buf, [][]float32{{1, 2, 3}})
	raw := buf.Bytes()
	if _, err := ReadFvecs(bytes.NewReader(raw[:len(raw)-2])); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated record = %v, want ErrBadFormat", err)
	}
	// Truncated header (partial dim field).
	if _, err := ReadFvecs(bytes.NewReader(raw[:2])); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated header = %v, want ErrBadFormat", err)
	}
}

func TestNegativeDimensionRejected(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF} // dim = -1
	if _, err := ReadBvecs(bytes.NewReader(raw)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("negative dim = %v, want ErrBadFormat", err)
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	fv := filepath.Join(dir, "x.fvecs")
	bv := filepath.Join(dir, "x.bvecs")
	iv := filepath.Join(dir, "x.ivecs")

	if err := WriteFvecsFile(fv, [][]float32{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFvecsFile(fv); err != nil || got[0][1] != 2 {
		t.Fatalf("fvecs file = %v, %v", got, err)
	}
	if err := WriteBvecsFile(bv, [][]uint8{{3}}); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadBvecsFile(bv); err != nil || got[0][0] != 3 {
		t.Fatalf("bvecs file = %v, %v", got, err)
	}
	if err := WriteIvecsFile(iv, [][]uint32{{4}}); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadIvecsFile(iv); err != nil || got[0][0] != 4 {
		t.Fatalf("ivecs file = %v, %v", got, err)
	}
	if _, err := ReadFvecsFile(filepath.Join(dir, "missing.fvecs")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestQuickFvecsRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		data := make([][]float32, n)
		for i := range data {
			v := make([]float32, rng.Intn(30))
			for j := range v {
				v[j] = rng.Float32()
			}
			data[i] = v
		}
		var buf bytes.Buffer
		if err := WriteFvecs(&buf, data); err != nil {
			return false
		}
		got, err := ReadFvecs(&buf)
		if err != nil || len(got) != len(data) {
			return false
		}
		for i := range data {
			if len(got[i]) != len(data[i]) {
				return false
			}
			for j := range data[i] {
				if got[i][j] != data[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
