package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// refFloat32s is the portable reference encoding the bulk fast path
// must match byte-for-byte: uint32 length prefix, then each element as
// little-endian IEEE-754 bits.
func refFloat32s(v []float32) []byte {
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(v)))
	for _, x := range v {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(x))
	}
	return out
}

func refUint32s(v []uint32) []byte {
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(v)))
	for _, x := range v {
		out = binary.LittleEndian.AppendUint32(out, x)
	}
	return out
}

// TestBulkCodecMatchesReference pins the copy-based vector codec to
// the element-at-a-time little-endian reference, including NaN
// payloads and negative zero, whose bit patterns must survive intact.
func TestBulkCodecMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 7, 96, 784} {
		fs := make([]float32, n)
		us := make([]uint32, n)
		for i := range fs {
			fs[i] = float32(rng.NormFloat64())
			us[i] = rng.Uint32()
		}
		if n > 2 {
			fs[0] = float32(math.NaN())
			fs[1] = float32(math.Copysign(0, -1))
			fs[2] = float32(math.Inf(-1))
		}

		var w Writer
		w.Float32s(fs)
		w.Uint32s(us)
		want := append(refFloat32s(fs), refUint32s(us)...)
		if !bytes.Equal(w.Bytes(), want) {
			t.Fatalf("n=%d: encoded bytes diverge from reference", n)
		}

		r := NewReader(w.Bytes())
		gotF := r.Float32s()
		gotU := r.Uint32s()
		if err := r.Finish(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n == 0 {
			if len(gotF) != 0 || len(gotU) != 0 {
				t.Fatalf("n=0: got %v %v", gotF, gotU)
			}
			continue
		}
		for i := range fs {
			if math.Float32bits(gotF[i]) != math.Float32bits(fs[i]) {
				t.Fatalf("n=%d: float bits [%d] = %08x, want %08x",
					n, i, math.Float32bits(gotF[i]), math.Float32bits(fs[i]))
			}
		}
		if !reflect.DeepEqual(gotU, us) {
			t.Fatalf("n=%d: uint32 round trip diverged", n)
		}
	}
}

// TestBulkDecodeUnalignedSource decodes from a frame whose vector body
// starts at every offset mod 8, so the byte-view copy is exercised
// against arbitrarily aligned source bytes.
func TestBulkDecodeUnalignedSource(t *testing.T) {
	fs := []float32{1.5, -2.25, 3.125, 0.0625}
	for pad := 0; pad < 8; pad++ {
		var w Writer
		for i := 0; i < pad; i++ {
			w.Uint8(0xEE)
		}
		w.Float32s(fs)
		r := NewReader(w.Bytes())
		for i := 0; i < pad; i++ {
			r.Uint8()
		}
		got := r.Float32s()
		if err := r.Finish(); err != nil {
			t.Fatalf("pad=%d: %v", pad, err)
		}
		if !reflect.DeepEqual(got, fs) {
			t.Fatalf("pad=%d: got %v, want %v", pad, got, fs)
		}
	}
}

func BenchmarkFloat32sEncode(b *testing.B) {
	v := make([]float32, 784)
	for i := range v {
		v[i] = float32(i) * 0.5
	}
	w := NewWriter(4 * len(v))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		w.Float32s(v)
	}
}

func BenchmarkFloat32sDecode(b *testing.B) {
	v := make([]float32, 784)
	for i := range v {
		v[i] = float32(i) * 0.5
	}
	var w Writer
	w.Float32s(v)
	dst := make([]float32, len(v))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(w.Bytes())
		if r.Float32sInto(dst) == nil {
			b.Fatal(r.Err())
		}
	}
}
