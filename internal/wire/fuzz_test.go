package wire

import (
	"bytes"
	"testing"
)

// FuzzBulkCodec holds the bulk little-endian vector codecs (the
// copy-based fast path on LE hosts) to two properties on arbitrary
// input:
//
//  1. Writer.Uint32s / Writer.Float32s emit exactly the bytes of the
//     count + per-element scalar loop they replaced — the layout every
//     message codec is pinned to.
//  2. Reader.Uint32s / Float32s and their Into variants decode a frame
//     to the same elements and error state as a scalar-loop decode,
//     and never allocate past the frame on a corrupt length prefix.
func FuzzBulkCodec(f *testing.F) {
	f.Add([]byte{3, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Treat the input both as raw element data to encode and as a
		// wire frame to decode.
		n := len(data) / 4
		u32s := make([]uint32, n)
		f32s := make([]float32, n)
		ref := NewReader(data)
		for i := 0; i < n; i++ {
			u32s[i] = ref.Uint32()
		}
		fr := NewReader(data)
		for i := 0; i < n; i++ {
			f32s[i] = fr.Float32()
		}

		// Property 1: bulk encode == scalar-loop encode, bit for bit.
		bulk := NewWriter(4 + 4*n)
		bulk.Uint32s(u32s)
		loop := NewWriter(4 + 4*n)
		loop.Uint32(uint32(n))
		for _, x := range u32s {
			loop.Uint32(x)
		}
		if !bytes.Equal(bulk.Bytes(), loop.Bytes()) {
			t.Fatalf("Uint32s bulk encode diverges from scalar loop:\nbulk %x\nloop %x",
				bulk.Bytes(), loop.Bytes())
		}
		bulkF := NewWriter(4 + 4*n)
		bulkF.Float32s(f32s)
		loopF := NewWriter(4 + 4*n)
		loopF.Uint32(uint32(n))
		for _, x := range f32s {
			loopF.Float32(x)
		}
		if !bytes.Equal(bulkF.Bytes(), loopF.Bytes()) {
			t.Fatalf("Float32s bulk encode diverges from scalar loop:\nbulk %x\nloop %x",
				bulkF.Bytes(), loopF.Bytes())
		}

		// Property 2: bulk decode == scalar-loop decode on the raw
		// input interpreted as a frame (length prefix + elements),
		// including the error outcome on short or oversize frames.
		refDecode := func() ([]uint32, error) {
			r := NewReader(data)
			m := r.Uint32()
			if r.Err() != nil {
				return nil, r.Err()
			}
			if m > MaxVectorLen {
				return nil, ErrOversize
			}
			if int64(m)*4 > int64(r.Remaining()) {
				return nil, ErrShortBuffer
			}
			out := make([]uint32, m)
			for i := range out {
				out[i] = r.Uint32()
			}
			return out, r.Err()
		}
		want, wantErr := refDecode()

		check := func(name string, got []uint32, err error) {
			t.Helper()
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("%s error mismatch: got %v, want %v", name, err, wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(want) {
				t.Fatalf("%s length mismatch: got %d, want %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s element %d: got %d, want %d", name, i, got[i], want[i])
				}
			}
		}

		r1 := NewReader(data)
		check("Uint32s", r1.Uint32s(), r1.Err())
		r2 := NewReader(data)
		check("Uint32sInto", r2.Uint32sInto(make([]uint32, 0, 2)), r2.Err())
		r3 := NewReader(data)
		gotF := r3.Float32sInto(nil)
		if (r3.Err() == nil) != (wantErr == nil) {
			t.Fatalf("Float32sInto error mismatch: got %v, want %v", r3.Err(), wantErr)
		}
		if r3.Err() == nil && len(gotF) != len(want) {
			t.Fatalf("Float32sInto length mismatch: got %d, want %d", len(gotF), len(want))
		}
	})
}
