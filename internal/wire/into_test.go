package wire

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestIntoDecodersReuseCapacity(t *testing.T) {
	w := NewWriter(0)
	fs := []float32{1.5, -2.25, 3.75}
	us := []uint32{7, 8, 9, 10}
	bs := []uint8{1, 2, 3, 4, 5}
	w.Float32s(fs)
	w.Uint32s(us)
	w.Uint8s(bs)

	// Scratch big enough: the decode must reuse its backing array.
	fScratch := make([]float32, 0, 16)
	uScratch := make([]uint32, 0, 16)
	bScratch := make([]uint8, 0, 16)
	r := NewReader(w.Bytes())
	gotF := r.Float32sInto(fScratch)
	gotU := r.Uint32sInto(uScratch)
	gotB := r.Uint8sInto(bScratch)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotF, fs) || !reflect.DeepEqual(gotU, us) || !reflect.DeepEqual(gotB, bs) {
		t.Fatalf("decoded %v %v %v", gotF, gotU, gotB)
	}
	if &gotF[0] != &fScratch[:1][0] {
		t.Error("Float32sInto did not reuse scratch backing array")
	}
	if &gotU[0] != &uScratch[:1][0] {
		t.Error("Uint32sInto did not reuse scratch backing array")
	}
	if &gotB[0] != &bScratch[:1][0] {
		t.Error("Uint8sInto did not reuse scratch backing array")
	}
}

func TestIntoDecodersGrowWhenSmall(t *testing.T) {
	w := NewWriter(0)
	fs := []float32{1, 2, 3, 4, 5, 6, 7}
	w.Float32s(fs)
	r := NewReader(w.Bytes())
	got := r.Float32sInto(make([]float32, 0, 2))
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fs) {
		t.Fatalf("decoded %v, want %v", got, fs)
	}
	// Nil scratch must also work.
	r2 := NewReader(w.Bytes())
	if got := r2.Float32sInto(nil); !reflect.DeepEqual(got, fs) {
		t.Fatalf("nil-scratch decode %v", got)
	}
}

func TestIntoMatchesPlainDecoders(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		fs := make([]float32, n)
		us := make([]uint32, n)
		for i := 0; i < n; i++ {
			fs[i] = rng.Float32()*2e6 - 1e6
			us[i] = rng.Uint32()
		}
		w := NewWriter(0)
		w.Float32s(fs)
		w.Uint32s(us)
		ra := NewReader(w.Bytes())
		rb := NewReader(w.Bytes())
		fa, fb := ra.Float32s(), rb.Float32sInto(make([]float32, 0, n))
		ua, ub := ra.Uint32s(), rb.Uint32sInto(make([]uint32, 0, n))
		if ra.Finish() != nil || rb.Finish() != nil {
			t.Fatalf("trial %d: decode errors %v %v", trial, ra.Err(), rb.Err())
		}
		if !reflect.DeepEqual(fa, fb) || !reflect.DeepEqual(ua, ub) {
			t.Fatalf("trial %d: plain/Into mismatch", trial)
		}
	}
}

func TestIntoShortBuffer(t *testing.T) {
	w := NewWriter(0)
	w.Float32s([]float32{1, 2, 3})
	enc := w.Bytes()
	r := NewReader(enc[:len(enc)-2])
	if got := r.Float32sInto(make([]float32, 0, 8)); got != nil {
		t.Errorf("short decode returned %v, want nil", got)
	}
	if r.Err() != ErrShortBuffer {
		t.Errorf("err = %v", r.Err())
	}
}

func TestGetVectorBorrowUint8ZeroCopy(t *testing.T) {
	w := NewWriter(0)
	v := []uint8{9, 8, 7, 6}
	PutVector(w, v)
	r := NewReader(w.Bytes())
	got, scratch := GetVectorBorrow[uint8](r, nil)
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("decoded %v", got)
	}
	if scratch != nil {
		t.Error("uint8 borrow should not create scratch")
	}
	// Zero-copy: the vector aliases the encoded buffer.
	if &got[0] != &w.Bytes()[4] {
		t.Error("uint8 borrow is not a view of the reader's buffer")
	}
}

func TestGetVectorBorrowFloat32UsesScratch(t *testing.T) {
	w := NewWriter(0)
	v := []float32{1.5, 2.5, -3}
	PutVector(w, v)

	r := NewReader(w.Bytes())
	got, scratch := GetVectorBorrow[float32](r, nil)
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("decoded %v", got)
	}
	// Second decode with the carried scratch must reuse its array.
	r2 := NewReader(w.Bytes())
	got2, scratch2 := GetVectorBorrow[float32](r2, scratch)
	if !reflect.DeepEqual(got2, v) {
		t.Fatalf("decoded %v", got2)
	}
	if &got2[0] != &scratch[0] {
		t.Error("float32 borrow did not reuse scratch")
	}
	if &scratch2[0] != &scratch[0] {
		t.Error("scratch not carried through")
	}
}

func TestGetVectorIntoRoundTrip(t *testing.T) {
	w := NewWriter(0)
	v := []uint32{5, 10, 15}
	PutVector(w, v)
	r := NewReader(w.Bytes())
	got := GetVectorInto(r, make([]uint32, 1))
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("decoded %v", got)
	}
}
