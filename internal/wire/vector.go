package wire

// Scalar is the set of feature-vector element types supported across the
// library: float32 for real-valued embeddings (DEEP, GloVe, ...), uint8
// for quantized vectors (BigANN), and uint32 for sparse set members
// (Jaccard datasets such as Kosarak).
type Scalar interface {
	float32 | uint8 | uint32
}

// ScalarSize returns the encoded size in bytes of one element of T.
func ScalarSize[T Scalar]() int {
	var z T
	switch any(z).(type) {
	case uint8:
		return 1
	default:
		return 4
	}
}

// VectorBytes returns the encoded size of a length-prefixed vector of n
// elements of type T, matching PutVector's output exactly.
func VectorBytes[T Scalar](n int) int { return 4 + n*ScalarSize[T]() }

// PutVector appends a length-prefixed vector of T.
func PutVector[T Scalar](w *Writer, v []T) {
	switch s := any(v).(type) {
	case []float32:
		w.Float32s(s)
	case []uint8:
		w.Uint8s(s)
	case []uint32:
		w.Uint32s(s)
	}
}

// GetVector decodes a length-prefixed vector of T into a new slice.
func GetVector[T Scalar](r *Reader) []T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(r.Float32s()).([]T)
	case uint8:
		return any(r.Uint8s()).([]T)
	default:
		return any(r.Uint32s()).([]T)
	}
}

// GetVectorInto decodes a length-prefixed vector of T into dst's
// backing array, allocating only when dst's capacity is insufficient.
// Returns the decoded slice (possibly dst resliced), or nil on error.
func GetVectorInto[T Scalar](r *Reader, dst []T) []T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(r.Float32sInto(any(dst).([]float32))).([]T)
	case uint8:
		return any(r.Uint8sInto(any(dst).([]uint8))).([]T)
	default:
		return any(r.Uint32sInto(any(dst).([]uint32))).([]T)
	}
}

// GetVectorBorrow decodes a length-prefixed vector of T without
// allocating in steady state. For uint8 the element encoding is the
// identity, so the result is a zero-copy view of the Reader's buffer;
// wider element types are decoded into scratch, which is grown only
// when too small. It returns the vector and the (possibly grown)
// scratch to carry to the next call. The vector may alias the Reader's
// buffer or the scratch: it is only valid until the underlying frame is
// released or the scratch is reused, so callers must finish with it
// before returning from the message handler.
func GetVectorBorrow[T Scalar](r *Reader, scratch []T) (vec, newScratch []T) {
	var z T
	if _, ok := any(z).(uint8); ok {
		return any(r.BytesView()).([]T), scratch
	}
	v := GetVectorInto(r, scratch)
	if v == nil {
		return nil, scratch
	}
	return v, v
}
