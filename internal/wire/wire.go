// Package wire implements the little-endian binary codec shared by the
// ygm transports and the metall datastore.
//
// All multi-byte integers are little-endian. Vectors are encoded as a
// uint32 element count followed by the raw elements. The codec is
// deliberately allocation-light: Writer appends into a caller-owned
// buffer and Reader walks a byte slice without copying until the caller
// asks for an owned value.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// hostLE reports whether the host stores multi-byte values
// little-endian. On such hosts the length-prefixed vector codecs can
// move whole element arrays with copy instead of an element-at-a-time
// shift loop: the wire format IS the host representation. The scalar
// loops below remain the portable fallback (and the reference the
// fast path is pinned to in tests).
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// byteView reinterprets a scalar slice as its raw bytes. Only valid
// for bulk copy on little-endian hosts; the view aliases v.
func byteView[T uint32 | float32](v []T) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

// ErrShortBuffer is returned when a Reader runs out of bytes mid-value.
var ErrShortBuffer = errors.New("wire: short buffer")

// ErrOversize is returned when a length prefix exceeds MaxVectorLen.
var ErrOversize = errors.New("wire: vector length exceeds limit")

// MaxVectorLen bounds decoded vector lengths to protect against corrupt
// or malicious frames (2^27 elements = 512 MiB of float32).
const MaxVectorLen = 1 << 27

// Writer appends encoded values to an internal buffer.
// The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer whose buffer has the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer. The slice aliases the Writer's
// internal storage and is invalidated by further writes or Reset.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Reset truncates the buffer, retaining capacity.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Wrap points the Writer at caller-provided storage (typically a
// zero-length slice of some larger buffer's tail), so encodes land in
// place. Writes beyond the slice's capacity fall back to the usual
// geometric growth, detaching from the provided storage — callers
// wrapping a shared buffer must size it for the full message (see
// ygm.Comm.AsyncWriter, which checks this).
func (w *Writer) Wrap(buf []byte) { w.buf = buf }

// reserve extends the buffer by n bytes and returns the new span for
// the caller to fill, growing the backing array geometrically.
func (w *Writer) reserve(n int) []byte {
	l := len(w.buf)
	if cap(w.buf)-l < n {
		nb := make([]byte, l, 2*cap(w.buf)+n)
		copy(nb, w.buf)
		w.buf = nb
	}
	w.buf = w.buf[:l+n]
	return w.buf[l:]
}

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Uint16 appends a little-endian uint16.
func (w *Writer) Uint16(v uint16) {
	w.buf = append(w.buf, byte(v), byte(v>>8))
}

// Uint32 appends a little-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Uint64 appends a little-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Int64 appends a little-endian int64.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Float32 appends an IEEE-754 float32.
func (w *Writer) Float32(v float32) { w.Uint32(math.Float32bits(v)) }

// Float64 appends an IEEE-754 float64.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Bytes32 appends a uint32 length prefix followed by raw bytes.
func (w *Writer) Bytes32(p []byte) {
	w.Uint32(uint32(len(p)))
	w.buf = append(w.buf, p...)
}

// String appends a uint32 length prefix followed by the string bytes.
func (w *Writer) String(s string) {
	w.Uint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Float32s appends a length-prefixed []float32.
func (w *Writer) Float32s(v []float32) {
	w.Uint32(uint32(len(v)))
	p := w.reserve(4 * len(v))
	if hostLE {
		copy(p, byteView(v))
		return
	}
	for i, x := range v {
		binary.LittleEndian.PutUint32(p[4*i:], math.Float32bits(x))
	}
}

// Uint8s appends a length-prefixed []uint8.
func (w *Writer) Uint8s(v []uint8) { w.Bytes32(v) }

// Uint32s appends a length-prefixed []uint32.
func (w *Writer) Uint32s(v []uint32) {
	w.Uint32(uint32(len(v)))
	p := w.reserve(4 * len(v))
	if hostLE {
		copy(p, byteView(v))
		return
	}
	for i, x := range v {
		binary.LittleEndian.PutUint32(p[4*i:], x)
	}
}

// Reader decodes values sequentially from a byte slice.
// Decoding errors are sticky: once any Get fails, Err reports it and
// subsequent Gets return zero values. This lets call sites decode a
// whole struct and check the error once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Reset repoints the Reader at p and clears its position and error,
// so a message handler can reuse one Reader across payloads instead of
// allocating per message.
func (r *Reader) Reset(p []byte) { r.buf, r.off, r.err = p, 0, nil }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns an error if decoding failed or bytes remain unconsumed.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShortBuffer
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// Uint8 decodes one byte.
func (r *Reader) Uint8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Uint16 decodes a little-endian uint16.
func (r *Reader) Uint16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return uint16(p[0]) | uint16(p[1])<<8
}

// Uint32 decodes a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
}

// Uint64 decodes a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

// Int64 decodes a little-endian int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Float32 decodes an IEEE-754 float32.
func (r *Reader) Float32() float32 { return math.Float32frombits(r.Uint32()) }

// Float64 decodes an IEEE-754 float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Bool decodes a one-byte boolean.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

func (r *Reader) length() int {
	n := r.Uint32()
	if r.err != nil {
		return 0
	}
	if n > MaxVectorLen {
		r.err = ErrOversize
		return 0
	}
	return int(n)
}

// Count decodes a uint32 element count for records of the given byte
// size and validates it against the bytes remaining, so decoders can
// size an allocation from it safely: a corrupt count that the buffer
// cannot possibly satisfy fails the Reader here (ErrShortBuffer, as the
// doomed element reads would have) instead of provoking a huge
// allocation first.
func (r *Reader) Count(size int) int {
	n := r.Uint32()
	if r.err != nil {
		return 0
	}
	if n > MaxVectorLen {
		r.err = ErrOversize
		return 0
	}
	if int64(n)*int64(size) > int64(r.Remaining()) {
		r.fail()
		return 0
	}
	return int(n)
}

// Bytes32 decodes a length-prefixed byte slice. The returned slice is
// an owned copy.
func (r *Reader) Bytes32() []byte {
	n := r.length()
	p := r.take(n)
	if p == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

// BytesView decodes a length-prefixed byte slice without copying; the
// result aliases the Reader's buffer.
func (r *Reader) BytesView() []byte {
	n := r.length()
	return r.take(n)
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.length()
	p := r.take(n)
	return string(p)
}

// Float32s decodes a length-prefixed []float32 into a new slice.
func (r *Reader) Float32s() []float32 {
	n := r.length()
	if !r.fits(n, 4) {
		return nil
	}
	return r.float32sBody(make([]float32, n))
}

// fits reports whether n elements of the given byte size can still be
// read, failing the Reader otherwise. It guards slice allocations
// against corrupt length prefixes: without it a hostile count under
// MaxVectorLen could demand a half-gigabyte allocation that the
// subsequent take would reject anyway.
func (r *Reader) fits(n, size int) bool {
	if r.err != nil {
		return false
	}
	if int64(n)*int64(size) > int64(r.Remaining()) {
		r.fail()
		return false
	}
	return true
}

// Float32sInto decodes a length-prefixed []float32 into dst's backing
// array, allocating only when dst's capacity is insufficient. It
// returns the decoded slice (which may be dst resliced) or nil on
// error; dst's previous contents are overwritten.
func (r *Reader) Float32sInto(dst []float32) []float32 {
	n := r.length()
	if !r.fits(n, 4) {
		return nil
	}
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	return r.float32sBody(dst[:n])
}

func (r *Reader) float32sBody(dst []float32) []float32 {
	p := r.take(4 * len(dst))
	if p == nil {
		return nil
	}
	if hostLE {
		copy(byteView(dst), p)
		return dst
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return dst
}

// Uint8s decodes a length-prefixed []uint8 into a new slice.
func (r *Reader) Uint8s() []uint8 { return r.Bytes32() }

// Uint8sInto decodes a length-prefixed []uint8 into dst's backing
// array, allocating only when dst's capacity is insufficient.
func (r *Reader) Uint8sInto(dst []uint8) []uint8 {
	n := r.length()
	p := r.take(n)
	if p == nil {
		return nil
	}
	if cap(dst) < n {
		dst = make([]uint8, n)
	}
	dst = dst[:n]
	copy(dst, p)
	return dst
}

// Uint32s decodes a length-prefixed []uint32 into a new slice.
func (r *Reader) Uint32s() []uint32 {
	n := r.length()
	if !r.fits(n, 4) {
		return nil
	}
	return r.uint32sBody(make([]uint32, n))
}

// Uint32sInto decodes a length-prefixed []uint32 into dst's backing
// array, allocating only when dst's capacity is insufficient.
func (r *Reader) Uint32sInto(dst []uint32) []uint32 {
	n := r.length()
	if !r.fits(n, 4) {
		return nil
	}
	if cap(dst) < n {
		dst = make([]uint32, n)
	}
	return r.uint32sBody(dst[:n])
}

func (r *Reader) uint32sBody(dst []uint32) []uint32 {
	p := r.take(4 * len(dst))
	if p == nil {
		return nil
	}
	if hostLE {
		copy(byteView(dst), p)
		return dst
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return dst
}
