package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Uint8(0xAB)
	w.Uint16(0xBEEF)
	w.Uint32(0xDEADBEEF)
	w.Uint64(0x0123456789ABCDEF)
	w.Int64(-42)
	w.Float32(3.5)
	w.Float64(-2.25)
	w.Bool(true)
	w.Bool(false)
	w.String("hello")

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %#x", got)
	}
	if got := r.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 0x0123456789ABCDEF {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Int64(); got != -42 {
		t.Errorf("Int64 = %d", got)
	}
	if got := r.Float32(); got != 3.5 {
		t.Errorf("Float32 = %v", got)
	}
	if got := r.Float64(); got != -2.25 {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Bool(); !got {
		t.Errorf("Bool = %v", got)
	}
	if got := r.Bool(); got {
		t.Errorf("Bool = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(0x04030201)
	if !bytes.Equal(w.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatalf("layout = %v, want little-endian [1 2 3 4]", w.Bytes())
	}
}

func TestShortBufferIsSticky(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.Uint32() // fails: only 2 bytes
	if r.Err() != ErrShortBuffer {
		t.Fatalf("Err = %v, want ErrShortBuffer", r.Err())
	}
	// Subsequent reads return zero values and do not panic.
	if got := r.Uint64(); got != 0 {
		t.Errorf("Uint64 after error = %d, want 0", got)
	}
	if got := r.Float32s(); got != nil {
		t.Errorf("Float32s after error = %v, want nil", got)
	}
	if err := r.Finish(); err != ErrShortBuffer {
		t.Errorf("Finish = %v, want ErrShortBuffer", err)
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(7)
	w.Uint8(1)
	r := NewReader(w.Bytes())
	_ = r.Uint32()
	if err := r.Finish(); err == nil {
		t.Fatal("Finish should report trailing bytes")
	}
}

func TestOversizeVectorRejected(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(MaxVectorLen + 1)
	r := NewReader(w.Bytes())
	if got := r.Float32s(); got != nil {
		t.Fatalf("oversize decode returned %d elems", len(got))
	}
	if r.Err() != ErrOversize {
		t.Fatalf("Err = %v, want ErrOversize", r.Err())
	}
}

func TestResetReusesBuffer(t *testing.T) {
	w := NewWriter(16)
	w.Uint64(1)
	p := &w.Bytes()[0]
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.Uint64(2)
	if &w.Bytes()[0] != p {
		t.Error("Reset did not retain the underlying buffer")
	}
}

func TestQuickFloat32sRoundTrip(t *testing.T) {
	f := func(v []float32) bool {
		w := NewWriter(len(v)*4 + 4)
		w.Float32s(v)
		r := NewReader(w.Bytes())
		got := r.Float32s()
		if r.Finish() != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			// NaN-safe comparison via bit patterns.
			if math.Float32bits(got[i]) != math.Float32bits(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUint32sRoundTrip(t *testing.T) {
	f := func(v []uint32) bool {
		w := NewWriter(0)
		w.Uint32s(v)
		r := NewReader(w.Bytes())
		got := r.Uint32s()
		if r.Finish() != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBytesAndStringRoundTrip(t *testing.T) {
	f := func(b []byte, s string) bool {
		w := NewWriter(0)
		w.Bytes32(b)
		w.String(s)
		r := NewReader(w.Bytes())
		gb := r.Bytes32()
		gs := r.String()
		return r.Finish() == nil && bytes.Equal(gb, b) && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixedSequence(t *testing.T) {
	f := func(a uint32, b int64, c float64, d bool, v []uint8) bool {
		w := NewWriter(0)
		w.Uint32(a)
		w.Int64(b)
		w.Float64(c)
		w.Bool(d)
		w.Uint8s(v)
		r := NewReader(w.Bytes())
		okA := r.Uint32() == a
		okB := r.Int64() == b
		gc := r.Float64()
		okC := math.Float64bits(gc) == math.Float64bits(c)
		okD := r.Bool() == d
		gv := r.Uint8s()
		return r.Finish() == nil && okA && okB && okC && okD && bytes.Equal(gv, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesViewAliases(t *testing.T) {
	w := NewWriter(0)
	w.Bytes32([]byte{9, 8, 7})
	buf := w.Bytes()
	r := NewReader(buf)
	view := r.BytesView()
	if len(view) != 3 {
		t.Fatalf("view len = %d", len(view))
	}
	buf[4] = 42 // first payload byte (after the 4-byte length prefix)
	if view[0] != 42 {
		t.Error("BytesView should alias the underlying buffer")
	}
}

func TestGenericVectorRoundTrip(t *testing.T) {
	checkF32 := func(v []float32) {
		w := NewWriter(0)
		PutVector(w, v)
		if w.Len() != VectorBytes[float32](len(v)) {
			t.Fatalf("VectorBytes mismatch: %d vs %d", w.Len(), VectorBytes[float32](len(v)))
		}
		got := GetVector[float32](NewReader(w.Bytes()))
		if len(got) != len(v) {
			t.Fatalf("len = %d, want %d", len(got), len(v))
		}
		for i := range v {
			if got[i] != v[i] {
				t.Fatalf("elem %d = %v, want %v", i, got[i], v[i])
			}
		}
	}
	checkF32([]float32{1, -2.5, 3e9})
	checkF32(nil)

	wu := NewWriter(0)
	PutVector(wu, []uint8{1, 2, 255})
	if wu.Len() != VectorBytes[uint8](3) {
		t.Fatalf("uint8 VectorBytes mismatch")
	}
	gu := GetVector[uint8](NewReader(wu.Bytes()))
	if len(gu) != 3 || gu[2] != 255 {
		t.Fatalf("uint8 round trip = %v", gu)
	}

	ws := NewWriter(0)
	PutVector(ws, []uint32{7, 11, 1 << 30})
	gs := GetVector[uint32](NewReader(ws.Bytes()))
	if len(gs) != 3 || gs[2] != 1<<30 {
		t.Fatalf("uint32 round trip = %v", gs)
	}
}

func TestScalarSize(t *testing.T) {
	if ScalarSize[float32]() != 4 || ScalarSize[uint8]() != 1 || ScalarSize[uint32]() != 4 {
		t.Fatal("ScalarSize wrong")
	}
}
