package ygm

import (
	"fmt"

	"dnnd/internal/wire"
)

// The barrier implements distributed quiescence detection so that, as
// in YGM, Barrier returns only after every asynchronously sent message
// — including messages sent by message handlers, recursively — has been
// processed everywhere.
//
// Protocol (coordinator = rank 0):
//
//  1. A rank entering Barrier drains its mailbox, flushes its send
//     buffers, and when locally idle sends an idle report
//     (epoch, sentApp, recvApp) to the coordinator. It re-reports
//     whenever it processed app traffic since its last report.
//  2. When the coordinator holds idle reports from all ranks for the
//     current epoch and sum(sent) == sum(recv), it starts a
//     confirmation round: ctrlConfirm to every other rank.
//  3. Each rank answers with its current counters and idle flag. If all
//     answers are idle with counters unchanged from the reports (and
//     the coordinator's own counters are unchanged), no message can be
//     in flight, so the coordinator releases every rank. Any mismatch
//     aborts the round; fresh idle reports restart it.
//
// Control messages never change app counters and handlers never emit
// app traffic from control records, so the detection terminates.

type coordReport struct {
	epoch      uint64
	sent, recv int64
	valid      bool
}

type coordState struct {
	reports []coordReport
	// Active confirmation round.
	confirmActive bool
	confirmID     uint64
	acksNeeded    int
	acksGood      int
}

func newCoordState(nranks int) *coordState {
	return &coordState{reports: make([]coordReport, nranks)}
}

// Barrier blocks until all ranks have entered Barrier and the world is
// quiescent: no app message is buffered, in flight, or being processed
// anywhere. Every rank must call Barrier (SPMD).
func (c *Comm) Barrier() {
	c.checkErr()
	c.assertOwner()
	sp := c.trace.Begin("ygm.barrier")
	c.stats.Barriers++
	c.epoch++
	c.inBarrier = true
	c.released = false
	c.needReport = true

	if c.nranks == 1 {
		// Single rank: quiescence = drain everything we sent ourselves
		// and apply all deferred local work (which may itself send).
		// Both steps are deterministic — drainAll empties a FIFO this
		// goroutine filled, and the local-work driver applies its ring
		// in submission order — so single-rank runs stay bit-identical
		// regardless of worker scheduling.
		for {
			c.Flush()
			progressed := c.drainAll()
			if c.runLocalWork() {
				progressed = true
			}
			if !progressed && c.outboxesEmpty() && c.mbox.empty() && !c.localPending() {
				break
			}
		}
		c.inBarrier = false
		sp.End()
		c.recordInterval()
		return
	}

	for !c.released {
		c.drainAll()
		// Apply deferred local work before judging idleness: staged
		// tasks may owe replies that the sent/recv accounting cannot
		// see until they are sent (see localwork.go).
		c.runLocalWork()
		c.Flush()
		c.checkErr()
		if c.released {
			break
		}
		if c.mbox.empty() && c.outboxesEmpty() && !c.localPending() {
			if c.needReport {
				c.needReport = false
				c.sendIdleReport()
				continue // the report may have been to self
			}
			// Idle and reported: wait for traffic or release.
			d, ok := c.mbox.popBlocking()
			if !ok {
				panic(errWorldAborted)
			}
			c.dispatch(d)
		}
	}
	c.inBarrier = false
	sp.End()
	c.recordInterval()
}

func (c *Comm) sendIdleReport() {
	w := wire.NewWriter(24)
	w.Uint64(c.epoch)
	w.Int64(c.stats.SentMsgs)
	w.Int64(c.stats.RecvMsgs)
	c.sendCtrl(0, hdlIdleReport, w.Bytes())
}

func handleIdleReport(c *Comm, from int, payload []byte) {
	r := wire.NewReader(payload)
	epoch := r.Uint64()
	sent := r.Int64()
	recv := r.Int64()
	if r.Finish() != nil {
		panic("ygm: bad idle report")
	}
	st := c.coord
	st.reports[from] = coordReport{epoch: epoch, sent: sent, recv: recv, valid: true}
	// Any new report invalidates an in-flight confirmation.
	st.confirmActive = false
	c.coordEvaluate()
}

// coordEvaluate checks whether all ranks reported idle for the same
// epoch with balanced counters, and if so starts a confirmation round.
func (c *Comm) coordEvaluate() {
	st := c.coord
	if st.confirmActive {
		return
	}
	epoch := st.reports[0].epoch
	var sent, recv int64
	for i := range st.reports {
		rep := &st.reports[i]
		if !rep.valid || rep.epoch != epoch || epoch == 0 {
			return
		}
		sent += rep.sent
		recv += rep.recv
	}
	if sent != recv {
		return
	}
	st.confirmActive = true
	st.confirmID++
	st.acksNeeded = c.nranks - 1
	st.acksGood = 0
	if st.acksNeeded == 0 {
		c.coordMaybeRelease(epoch)
		return
	}
	w := wire.NewWriter(16)
	w.Uint64(st.confirmID)
	for dest := 1; dest < c.nranks; dest++ {
		c.sendCtrl(dest, hdlConfirm, w.Bytes())
	}
}

func handleConfirm(c *Comm, from int, payload []byte) {
	r := wire.NewReader(payload)
	confirmID := r.Uint64()
	if r.Finish() != nil {
		panic("ygm: bad confirm")
	}
	idle := c.inBarrier && c.mbox.empty() && c.outboxesEmpty() && !c.localPending()
	w := wire.NewWriter(32)
	w.Uint64(confirmID)
	w.Uint64(c.epoch)
	w.Int64(c.stats.SentMsgs)
	w.Int64(c.stats.RecvMsgs)
	w.Bool(idle)
	c.sendCtrl(from, hdlConfirmAck, w.Bytes())
}

func handleConfirmAck(c *Comm, from int, payload []byte) {
	r := wire.NewReader(payload)
	confirmID := r.Uint64()
	epoch := r.Uint64()
	sent := r.Int64()
	recv := r.Int64()
	idle := r.Bool()
	if r.Finish() != nil {
		panic("ygm: bad confirm ack")
	}
	st := c.coord
	if !st.confirmActive || confirmID != st.confirmID {
		return // stale ack from an aborted round
	}
	rep := st.reports[from]
	if !idle || epoch != rep.epoch || sent != rep.sent || recv != rep.recv {
		st.confirmActive = false // abort; a fresh idle report will retry
		return
	}
	st.acksGood++
	if st.acksGood == st.acksNeeded {
		c.coordMaybeRelease(epoch)
	}
}

// coordMaybeRelease performs the coordinator's own final check and, if
// it passes, releases every rank. The coordinator has no ack message;
// it verifies directly that its counters are unchanged since its idle
// report and that it is still in the barrier.
func (c *Comm) coordMaybeRelease(epoch uint64) {
	st := c.coord
	self := st.reports[0]
	if !c.inBarrier || c.epoch != epoch ||
		c.stats.SentMsgs != self.sent || c.stats.RecvMsgs != self.recv ||
		!c.outboxesEmpty() || c.localPending() {
		st.confirmActive = false
		return
	}
	st.confirmActive = false
	for i := range st.reports {
		st.reports[i].valid = false
	}
	w := wire.NewWriter(8)
	w.Uint64(epoch)
	for dest := 1; dest < c.nranks; dest++ {
		c.sendCtrl(dest, hdlRelease, w.Bytes())
	}
	c.released = true
}

func handleRelease(c *Comm, from int, payload []byte) {
	r := wire.NewReader(payload)
	epoch := r.Uint64()
	if r.Finish() != nil {
		panic("ygm: bad release")
	}
	if epoch != c.epoch {
		panic(fmt.Sprintf("ygm: rank %d got release for epoch %d while in %d", c.rank, epoch, c.epoch))
	}
	c.released = true
}

// ---- AllReduce -----------------------------------------------------

// ReduceOp selects the AllReduce combiner.
type ReduceOp uint8

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMin
	OpMax
)

type reduceAccum struct {
	op    ReduceOp
	isInt bool
	i     int64
	f     float64
	count int
}

// AllReduceSum returns the sum of v across all ranks. All ranks must
// call the same AllReduce operations in the same order; the call
// processes incoming app messages while it waits, so it may be used in
// the middle of asynchronous phases as a collective checkpoint.
func (c *Comm) AllReduceSum(v int64) int64 { return c.allReduceInt(v, OpSum) }

// AllReduceMax returns the maximum of v across all ranks.
func (c *Comm) AllReduceMax(v int64) int64 { return c.allReduceInt(v, OpMax) }

// AllReduceMin returns the minimum of v across all ranks.
func (c *Comm) AllReduceMin(v int64) int64 { return c.allReduceInt(v, OpMin) }

// AllReduceSumFloat returns the float64 sum of v across all ranks.
func (c *Comm) AllReduceSumFloat(v float64) float64 { return c.allReduceFloat(v, OpSum) }

// AllReduceMaxFloat returns the float64 maximum of v across all ranks.
func (c *Comm) AllReduceMaxFloat(v float64) float64 { return c.allReduceFloat(v, OpMax) }

func (c *Comm) allReduceInt(v int64, op ReduceOp) int64 {
	res := c.allReduce(true, v, 0, op)
	r := wire.NewReader(res)
	out := r.Int64()
	return out
}

func (c *Comm) allReduceFloat(v float64, op ReduceOp) float64 {
	res := c.allReduce(false, 0, v, op)
	r := wire.NewReader(res)
	return r.Float64()
}

func (c *Comm) allReduce(isInt bool, iv int64, fv float64, op ReduceOp) []byte {
	c.checkErr()
	c.assertOwner()
	c.reduceSeq++
	seq := c.reduceSeq
	if c.nranks == 1 {
		w := wire.NewWriter(8)
		if isInt {
			w.Int64(iv)
		} else {
			w.Float64(fv)
		}
		return w.Bytes()
	}
	w := wire.NewWriter(32)
	w.Uint64(seq)
	w.Uint8(uint8(op))
	w.Bool(isInt)
	if isInt {
		w.Int64(iv)
	} else {
		w.Float64(fv)
	}
	c.sendCtrl(0, hdlReduceContrib, w.Bytes())
	for {
		if res, ok := c.reduceResults[seq]; ok {
			delete(c.reduceResults, seq)
			return res
		}
		c.Flush()
		if !c.drainAll() {
			// Waiting on peers anyway: drive deferred local work so
			// staged replies flow while the collective assembles.
			if c.runLocalWork() {
				continue
			}
			if res, ok := c.reduceResults[seq]; ok {
				delete(c.reduceResults, seq)
				return res
			}
			d, ok := c.mbox.popBlocking()
			if !ok {
				panic(errWorldAborted)
			}
			c.dispatch(d)
		}
	}
}

func handleReduceContrib(c *Comm, from int, payload []byte) {
	r := wire.NewReader(payload)
	seq := r.Uint64()
	op := ReduceOp(r.Uint8())
	isInt := r.Bool()
	var iv int64
	var fv float64
	if isInt {
		iv = r.Int64()
	} else {
		fv = r.Float64()
	}
	if r.Finish() != nil {
		panic("ygm: bad reduce contribution")
	}
	acc, ok := c.reduceAccum[seq]
	if !ok {
		acc = &reduceAccum{op: op, isInt: isInt, i: iv, f: fv, count: 1}
		c.reduceAccum[seq] = acc
	} else {
		acc.count++
		if isInt {
			switch op {
			case OpSum:
				acc.i += iv
			case OpMin:
				if iv < acc.i {
					acc.i = iv
				}
			case OpMax:
				if iv > acc.i {
					acc.i = iv
				}
			}
		} else {
			switch op {
			case OpSum:
				acc.f += fv
			case OpMin:
				if fv < acc.f {
					acc.f = fv
				}
			case OpMax:
				if fv > acc.f {
					acc.f = fv
				}
			}
		}
	}
	if acc.count == c.nranks {
		delete(c.reduceAccum, seq)
		w := wire.NewWriter(24)
		w.Uint64(seq)
		if acc.isInt {
			w.Int64(acc.i)
		} else {
			w.Float64(acc.f)
		}
		for dest := 0; dest < c.nranks; dest++ {
			c.sendCtrl(dest, hdlReduceResult, w.Bytes())
		}
	}
}

func handleReduceResult(c *Comm, from int, payload []byte) {
	r := wire.NewReader(payload)
	seq := r.Uint64()
	rest := make([]byte, r.Remaining())
	copy(rest, payload[8:])
	c.reduceResults[seq] = rest
}
