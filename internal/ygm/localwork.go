package ygm

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
)

// Deferred local work and the ownership rule.
//
// The DNND worker pool (internal/core) defers parts of message handling
// — distance batches evaluated by worker goroutines, with the results
// applied to neighbor lists later, in submission order, by the rank's
// own goroutine. That deferral punches a hole in quiescence detection:
// a staged task may still owe reply messages, yet it is invisible to
// the barrier's sent/recv accounting (an apply-only task sends nothing
// at all, and a reply-producing one has not sent yet). The local-work
// hook closes the hole: the barrier and the AllReduce wait loop drive
// run() whenever the rank would otherwise idle, and every idle
// judgment — the idle report precondition, the confirmation-round
// answer, and the coordinator's own release check — also requires
// pending() to be false.
//
// Ownership rule: a Comm is single-owner. Only the goroutine that runs
// the rank (the one World.Run spawns, which binds itself here) may call
// Async, Barrier, or AllReduce — worker goroutines hand results back to
// the owner and never touch the Comm. run() and pending() are likewise
// invoked only on the owning goroutine, so implementations need no
// locking against the Comm. BindOwner/assertOwner turn violations of
// this rule into an immediate panic instead of a data race: collectives
// always check, and Async checks on its opportunistic-drain tick under
// the race detector (see ownerCheckAsync), where the ~1us goroutine-ID
// lookup is acceptable.

// SetLocalWork registers the rank's deferred-work driver. run applies
// any currently pending work (it may send via Async) and reports
// whether it did anything; pending reports whether work remains. Both
// execute on the owning rank goroutine only. Pass (nil, nil) to clear
// the hook when the phase that staged the work is over.
func (c *Comm) SetLocalWork(run func() bool, pending func() bool) {
	c.localWorkRun = run
	c.localWorkPending = pending
}

// runLocalWork invokes the registered driver, if any.
func (c *Comm) runLocalWork() bool {
	if c.localWorkRun == nil {
		return false
	}
	return c.localWorkRun()
}

// localPending reports whether deferred local work remains staged.
func (c *Comm) localPending() bool {
	return c.localWorkPending != nil && c.localWorkPending()
}

// AddTasksDeferred counts work items handed to the intra-rank worker
// pool (tasks, not individual candidates), reported through Stats so
// the bench harness can relate offloaded work to message traffic.
func (c *Comm) AddTasksDeferred(n int64) { c.stats.TasksDeferred += n }

// BindOwner pins the Comm to the calling goroutine: from now on,
// collectives (and, under the race detector, sampled Asyncs) panic when
// driven from any other goroutine. World.Run binds each rank's
// goroutine automatically; external transports (TCP) may call this
// from the goroutine that will drive the rank.
func (c *Comm) BindOwner() { c.owner = curGoroutineID() }

func (c *Comm) assertOwner() {
	if c.owner == 0 {
		return
	}
	if g := curGoroutineID(); g != c.owner {
		panic(fmt.Sprintf(
			"ygm: rank %d driven from goroutine %d but bound to goroutine %d; "+
				"only the owning rank goroutine may send or enter collectives "+
				"(worker goroutines must hand results back to the owner)",
			c.rank, g, c.owner))
	}
}

// curGoroutineID parses the current goroutine's numeric ID from the
// runtime.Stack header ("goroutine N [...]"). There is no official
// accessor; this is the standard diagnostic-only technique, used here
// solely to enforce the ownership rule, never for logic.
func curGoroutineID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseUint(string(s[:i]), 10, 64); err == nil {
			return id
		}
	}
	return 0
}
