package ygm

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// deferredEcho simulates the worker-pool pattern on one rank: the ping
// handler does not reply inline but stages the reply, and the
// local-work driver sends staged replies when the progress engine asks.
// Quiescence must account for those staged replies — a barrier that
// released while any rank still owed one would lose it.
type deferredEcho struct {
	c      *Comm
	hPing  HandlerID
	hPong  HandlerID
	queue  []int // reply destinations staged by the ping handler
	pongs  int
	egress int
}

func newDeferredEcho(c *Comm) *deferredEcho {
	e := &deferredEcho{c: c}
	e.hPing = c.Register("ping", func(c *Comm, from int, payload []byte) {
		e.queue = append(e.queue, from)
		c.AddTasksDeferred(1)
	})
	e.hPong = c.Register("pong", func(c *Comm, from int, payload []byte) {
		e.pongs++
	})
	c.SetLocalWork(e.run, e.pending)
	return e
}

func (e *deferredEcho) run() bool {
	if len(e.queue) == 0 {
		return false
	}
	for _, dest := range e.queue {
		e.c.Async(dest, e.hPong, []byte{1})
		e.egress++
	}
	e.queue = e.queue[:0]
	return true
}

func (e *deferredEcho) pending() bool { return len(e.queue) > 0 }

func TestBarrierWaitsForDeferredLocalWork(t *testing.T) {
	for _, nranks := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("nranks=%d", nranks), func(t *testing.T) {
			const pingsPerPeer = 100
			w := NewLocalWorld(nranks)
			var mu sync.Mutex
			got := make(map[int]int)
			err := w.Run(func(c *Comm) error {
				e := newDeferredEcho(c)
				for round := 0; round < 3; round++ {
					for i := 0; i < pingsPerPeer; i++ {
						for dest := 0; dest < c.NRanks(); dest++ {
							c.Async(dest, e.hPing, []byte{0})
						}
					}
					c.Barrier()
					if e.pending() {
						return fmt.Errorf("rank %d released from barrier with %d staged replies",
							c.Rank(), len(e.queue))
					}
				}
				c.SetLocalWork(nil, nil)
				mu.Lock()
				got[c.Rank()] = e.pongs
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// Every ping produced exactly one pong, and all pongs landed
			// before their round's barrier released.
			want := 3 * pingsPerPeer * nranks
			for rank, pongs := range got {
				if pongs != want {
					t.Errorf("rank %d saw %d pongs, want %d", rank, pongs, want)
				}
			}
			agg := w.AggregateStats()
			if wantTasks := int64(3 * pingsPerPeer * nranks * nranks); agg.TasksDeferred != wantTasks {
				t.Errorf("TasksDeferred = %d, want %d", agg.TasksDeferred, wantTasks)
			}
		})
	}
}

// AllReduce used mid-phase must also drive deferred work while it
// waits, and its result must not be disturbed by the hook.
func TestAllReduceDrivesDeferredLocalWork(t *testing.T) {
	const nranks = 3
	w := NewLocalWorld(nranks)
	err := w.Run(func(c *Comm) error {
		e := newDeferredEcho(c)
		for dest := 0; dest < c.NRanks(); dest++ {
			c.Async(dest, e.hPing, []byte{0})
		}
		if sum := c.AllReduceSum(int64(c.Rank())); sum != 0+1+2 {
			return fmt.Errorf("AllReduceSum = %d", sum)
		}
		c.Barrier()
		if e.pongs != nranks {
			return fmt.Errorf("rank %d saw %d pongs, want %d", c.Rank(), e.pongs, nranks)
		}
		c.SetLocalWork(nil, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsAddSumsTasksDeferred(t *testing.T) {
	var total Stats
	total.Add(Stats{TasksDeferred: 3})
	total.Add(Stats{TasksDeferred: 4})
	if total.TasksDeferred != 7 {
		t.Errorf("TasksDeferred = %d, want 7", total.TasksDeferred)
	}
}

// The ownership rule: once bound (World.Run binds automatically), a
// collective driven from any other goroutine must panic loudly instead
// of racing.
func TestCollectivesPanicOffOwnerGoroutine(t *testing.T) {
	w := NewLocalWorld(1)
	err := w.Run(func(c *Comm) error {
		ch := make(chan any, 1)
		go func() {
			defer func() { ch <- recover() }()
			c.Barrier()
		}()
		v := <-ch
		if v == nil {
			return fmt.Errorf("Barrier off the owner goroutine did not panic")
		}
		if !strings.Contains(fmt.Sprint(v), "owning rank goroutine") {
			return fmt.Errorf("unexpected panic: %v", v)
		}
		// The owner itself is unaffected.
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
