//go:build !race

package ygm

// See ownercheck_race.go: the sampled Async ownership assertion runs
// only under the race detector; collectives always check.
const ownerCheckAsync = false
