//go:build race

package ygm

// Under the race detector, Async verifies the ownership rule on its
// opportunistic-drain tick (every pollInterval-th call). Production
// builds skip this (see ownercheck_norace.go): the goroutine-ID lookup
// costs about a microsecond, which is real money on the Async hot path,
// and the collectives still check unconditionally.
const ownerCheckAsync = true
