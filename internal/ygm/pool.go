package ygm

import "sync"

// Frame pooling. Aggregation buffers and delivery frames cycle through
// a package-level sync.Pool so steady-state traffic allocates nothing:
// a frame is filled by enqueue (or sendCtrl) on the sender, handed to
// the destination mailbox (local / self sends) or copied onto the
// socket and released immediately (remote TCP sends), and finally
// released by dispatch after the last record's handler returns — the
// same moment at which the Handler contract already invalidates payload
// views, so no handler can observe reuse.
//
// Frames are passed through the pool as *[]byte boxes, and the empty
// boxes cycle through their own pool, so neither Get nor Put allocates
// in steady state.

// minPooledFrame keeps sub-KiB frames (stray control records) from
// displacing flush-sized buffers in the pool.
const minPooledFrame = 1 << 10

var (
	framePool sync.Pool // holds *[]byte boxes with non-trivial backing arrays
	boxPool   = sync.Pool{New: func() any { return new([]byte) }}
)

// getFrame returns an empty frame with at least the given capacity,
// reusing a pooled backing array when one fits.
func getFrame(capacity int) []byte {
	if v := framePool.Get(); v != nil {
		p := v.(*[]byte)
		b := *p
		*p = nil
		boxPool.Put(p)
		if cap(b) >= capacity {
			return b[:0]
		}
	}
	return make([]byte, 0, capacity)
}

// putFrame recycles a frame's backing array. Callers must not touch the
// slice afterwards.
func putFrame(b []byte) {
	if cap(b) < minPooledFrame {
		return
	}
	p := boxPool.Get().(*[]byte)
	*p = b[:0]
	framePool.Put(p)
}
