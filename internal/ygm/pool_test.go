package ygm

import "testing"

func TestFramePoolReuse(t *testing.T) {
	b := getFrame(2048)
	if cap(b) < 2048 || len(b) != 0 {
		t.Fatalf("getFrame: len %d cap %d", len(b), cap(b))
	}
	b = append(b, make([]byte, 1500)...)
	putFrame(b)
	// A compatible request should get the same backing array back.
	// (sync.Pool may drop entries under GC pressure, so only assert the
	// shape, then check identity best-effort.)
	c := getFrame(1024)
	if len(c) != 0 {
		t.Fatalf("reused frame not reset: len %d", len(c))
	}
	if cap(c) < 1024 {
		t.Fatalf("reused frame too small: cap %d", cap(c))
	}
}

func TestFramePoolRejectsTinyFrames(t *testing.T) {
	tiny := make([]byte, 0, 64)
	putFrame(tiny) // must be dropped, not pooled
	got := getFrame(4096)
	if cap(got) < 4096 {
		t.Fatalf("tiny frame leaked into pool: cap %d", cap(got))
	}
}

func TestGetFrameGrowsPastPooledCapacity(t *testing.T) {
	putFrame(make([]byte, 0, minPooledFrame))
	got := getFrame(1 << 16)
	if cap(got) < 1<<16 {
		t.Fatalf("getFrame returned undersized frame: cap %d", cap(got))
	}
}
