package ygm

import "time"

// HandlerStats counts traffic for one registered handler, letting the
// application break totals down by message type (the Type 1 / Type 2 /
// Type 2+ / Type 3 accounting of the paper's Figure 4). Name is the
// registered handler name, so snapshots stay self-describing after
// aggregation across ranks — bench reports label message catalogs
// from it without holding a Comm.
type HandlerStats struct {
	Name      string
	SentMsgs  int64
	SentBytes int64
	RecvMsgs  int64
}

// Stats aggregates one rank's communication counters. Message counts
// are per logical async message (a record), not per transport frame;
// byte counts include the 6-byte record header. Control-plane traffic
// (barrier and reduce protocol) is excluded.
type Stats struct {
	SentMsgs        int64 // app messages submitted (including to self)
	SentBytes       int64
	RemoteSentMsgs  int64 // subset with destination != source rank
	RemoteSentBytes int64
	RecvMsgs        int64 // app messages whose handler completed
	Flushes         int64 // aggregation buffers handed to the transport
	Barriers        int64
	// PeakMailboxDepth/Bytes are high-water marks of this rank's
	// inbound queue — the congestion the Section 4.4 batching bounds.
	PeakMailboxDepth int64
	PeakMailboxBytes int64
	// TasksDeferred counts work items staged onto the intra-rank worker
	// pool (coalesced tasks, not individual candidate distances); see
	// Comm.AddTasksDeferred.
	TasksDeferred int64
	PerHandler    []HandlerStats
}

func (s Stats) clone() Stats {
	out := s
	out.PerHandler = make([]HandlerStats, len(s.PerHandler))
	copy(out.PerHandler, s.PerHandler)
	return out
}

// Add accumulates other into s (for world-level aggregation). Traffic
// counters (messages, bytes, flushes, deferred tasks, per-handler
// entries) sum across ranks — each rank contributes distinct traffic.
// Barriers instead takes the MAX: Barrier is collective, so in an
// SPMD run every rank records the same count and summing would
// multiply the world's barrier count by the rank count. Max also does
// the right thing when a rank died early (the survivors' larger count
// wins). PeakMailboxDepth/Bytes are high-water marks, so they too take
// the max — a world-level "worst congestion anywhere" figure.
func (s *Stats) Add(other Stats) {
	s.SentMsgs += other.SentMsgs
	s.SentBytes += other.SentBytes
	s.RemoteSentMsgs += other.RemoteSentMsgs
	s.RemoteSentBytes += other.RemoteSentBytes
	s.RecvMsgs += other.RecvMsgs
	s.Flushes += other.Flushes
	s.TasksDeferred += other.TasksDeferred
	if other.Barriers > s.Barriers {
		s.Barriers = other.Barriers
	}
	if other.PeakMailboxDepth > s.PeakMailboxDepth {
		s.PeakMailboxDepth = other.PeakMailboxDepth
	}
	if other.PeakMailboxBytes > s.PeakMailboxBytes {
		s.PeakMailboxBytes = other.PeakMailboxBytes
	}
	for len(s.PerHandler) < len(other.PerHandler) {
		s.PerHandler = append(s.PerHandler, HandlerStats{})
	}
	for i, h := range other.PerHandler {
		if s.PerHandler[i].Name == "" {
			s.PerHandler[i].Name = h.Name
		}
		s.PerHandler[i].SentMsgs += h.SentMsgs
		s.PerHandler[i].SentBytes += h.SentBytes
		s.PerHandler[i].RecvMsgs += h.RecvMsgs
	}
}

// IntervalStats captures one rank's activity between two consecutive
// barrier exits: messages and bytes sent, application-reported work
// units (AddWork), and the wall-clock span. With every rank on one CPU
// core, wall time cannot show strong scaling, so the harness derives a
// modeled parallel time from Work and SentBytes instead (see
// ModeledCriticalPath); both are reported.
type IntervalStats struct {
	SentMsgs  int64
	SentBytes int64
	Work      float64
	WallTime  time.Duration
}

// CostModel converts per-rank interval work and traffic into modeled
// execution time. Work units are vector-element operations; the rates
// come from a runtime calibration (see the bench package) or from
// defaults representative of one CPU core and a commodity interconnect.
type CostModel struct {
	// SecPerWorkUnit is the seconds one rank needs per work unit
	// (per vector-element distance operation).
	SecPerWorkUnit float64
	// SecPerByte is the per-rank communication cost per sent byte
	// (1/bandwidth share).
	SecPerByte float64
	// SecPerMsg is the per-message overhead (injection rate bound).
	SecPerMsg float64
	// SecPerBarrier is the latency of one global barrier/collective;
	// it is paid once per superstep regardless of rank count, which is
	// what makes strong scaling taper at high node counts.
	SecPerBarrier float64
}

// DefaultCostModel uses ~1 ns per element op (one core, SIMD-less),
// 100 Gb/s links shared per rank, 50 ns per message injection, and a
// 30 us global barrier (typical MPI_Allreduce latency at scale).
func DefaultCostModel() CostModel {
	return CostModel{
		SecPerWorkUnit: 1e-9,
		SecPerByte:     8.0 / 100e9,
		SecPerMsg:      50e-9,
		SecPerBarrier:  30e-6,
	}
}

// IntervalTime returns the modeled time one rank spends on an interval:
// compute plus communication (no overlap assumed, matching the paper's
// observation that DNND phases are communication-heavy).
func (m CostModel) IntervalTime(iv IntervalStats) float64 {
	return iv.Work*m.SecPerWorkUnit +
		float64(iv.SentBytes)*m.SecPerByte +
		float64(iv.SentMsgs)*m.SecPerMsg
}

// ModeledCriticalPath returns the modeled parallel execution time of a
// world run: for each barrier interval the slowest rank bounds the
// interval (BSP superstep semantics), and intervals sum.
func ModeledCriticalPath(perRank [][]IntervalStats, m CostModel) float64 {
	if len(perRank) == 0 {
		return 0
	}
	nIntervals := 0
	for _, ivs := range perRank {
		if len(ivs) > nIntervals {
			nIntervals = len(ivs)
		}
	}
	total := 0.0
	for i := 0; i < nIntervals; i++ {
		worst := 0.0
		for _, ivs := range perRank {
			if i < len(ivs) {
				if t := m.IntervalTime(ivs[i]); t > worst {
					worst = t
				}
			}
		}
		total += worst + m.SecPerBarrier
	}
	return total
}

// TotalWork sums work units over all ranks and intervals.
func TotalWork(perRank [][]IntervalStats) float64 {
	total := 0.0
	for _, ivs := range perRank {
		for _, iv := range ivs {
			total += iv.Work
		}
	}
	return total
}
