package ygm

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTCPGracefulClose verifies the exit contract of TCP worlds: after
// a barrier, a rank may Close and exit while peers are still doing
// local work; the goodbye frame prevents the peers from treating the
// socket teardown as a world failure.
func TestTCPGracefulClose(t *testing.T) {
	const n = 3
	addrs := freeAddrs(t, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	closedFlags := make([]bool, n)

	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := NewTCPComm(rank, addrs)
			if err != nil {
				errs[rank] = err
				return
			}
			h := c.Register("h", func(c *Comm, from int, payload []byte) {})
			for dest := 0; dest < n; dest++ {
				c.Async(dest, h, []byte{1})
			}
			c.Barrier()
			if rank != 0 {
				// Fast ranks leave immediately.
				c.Close()
				return
			}
			// Rank 0 keeps working locally (e.g. writing a datastore)
			// while its peers tear their sockets down.
			time.Sleep(200 * time.Millisecond)
			c.mbox.mu.Lock()
			closedFlags[0] = c.mbox.closed
			c.mbox.mu.Unlock()
			c.Close()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if closedFlags[0] {
		t.Fatal("peer exits after a barrier aborted rank 0's mailbox (goodbye frame not honored)")
	}
}

// TestTCPAbruptPeerDeathAborts: the flip side — a peer vanishing
// WITHOUT the goodbye must abort ranks blocked in a barrier instead of
// hanging them forever.
func TestTCPAbruptPeerDeathAborts(t *testing.T) {
	const n = 2
	addrs := freeAddrs(t, n)
	var wg sync.WaitGroup
	var barrierErr error

	wg.Add(2)
	go func() {
		defer wg.Done()
		c, err := NewTCPComm(0, addrs)
		if err != nil {
			barrierErr = err
			return
		}
		defer c.Close()
		defer func() {
			if r := recover(); r != nil {
				barrierErr = fmt.Errorf("recovered: %v", r)
			}
		}()
		c.Barrier() // rank 1 dies without entering: must abort, not hang
	}()
	go func() {
		defer wg.Done()
		c, err := NewTCPComm(1, addrs)
		if err != nil {
			return
		}
		// Simulate a crash: tear down sockets with no goodbye.
		time.Sleep(50 * time.Millisecond)
		c.tp.(*tcpTransport).teardown()
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("rank 0 hung in barrier after abrupt peer death")
	}
	if barrierErr == nil {
		t.Fatal("rank 0's barrier did not surface the peer failure")
	}
}
