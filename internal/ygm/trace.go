package ygm

import (
	"fmt"
	"sync/atomic"

	"dnnd/internal/obs"
)

// Tracing and metrics publication for a Comm. Both hooks are opt-in and
// nil-safe: with no track attached the hot paths pay one nil check, and
// with no registry attached recordInterval skips the snapshot entirely,
// so traced and untraced runs execute the identical message schedule.

// SetTrace attaches a span track to this rank. Subsequent barriers,
// flushes, and engine phases record spans onto it; mailbox congestion
// high-water marks are emitted as counter samples at each barrier exit.
// Call it before the rank starts communicating (same single-owner rule
// as every other Comm method); pass nil to detach.
func (c *Comm) SetTrace(tr *obs.Track) { c.trace = tr }

// Trace returns the attached span track (nil when tracing is off). The
// returned track's methods are themselves nil-safe, so callers may
// instrument unconditionally: c.Trace().Begin("..."). Safe on a nil
// Comm too (comm-less worker pools in tests).
func (c *Comm) Trace() *obs.Track {
	if c == nil {
		return nil
	}
	return c.trace
}

// SetTracer attaches one track per rank of a local world, named
// "rank N" with the rank as its sort order — the one-track-per-rank
// layout every exported timeline uses. A nil tracer detaches nothing
// and costs nothing.
func (w *World) SetTracer(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	for i, c := range w.comms {
		c.SetTrace(tr.Track(fmt.Sprintf("rank %d", i), i))
	}
}

// PublishMetrics registers every rank of a local world with reg (see
// Comm.PublishMetrics). It is called before Run — no handlers are
// registered yet, so only the top-level ygm_* counters are published;
// their values refresh at every barrier exit during the run.
func (w *World) PublishMetrics(reg *obs.Registry) {
	for _, c := range w.comms {
		c.PublishMetrics(reg)
	}
}

// pubMetrics is the barrier-exit snapshot of a rank's counters. The
// rank's own Stats fields are plain ints mutated by the owning
// goroutine; a metrics dump runs on an HTTP goroutine, so it must never
// read them directly. Instead recordInterval — always on the owning
// goroutine, at every barrier exit — stores the counters into these
// atomic slots, and the registry samples read the slots. Freshness is
// barrier-granularity, which is exactly the cadence at which the
// counters are globally meaningful.
type pubMetrics struct {
	sentMsgs        atomic.Int64
	sentBytes       atomic.Int64
	remoteSentMsgs  atomic.Int64
	remoteSentBytes atomic.Int64
	recvMsgs        atomic.Int64
	flushes         atomic.Int64
	barriers        atomic.Int64
	peakDepth       atomic.Int64
	peakBytes       atomic.Int64
	tasksDeferred   atomic.Int64
	perHandlerSent  []atomic.Int64
	perHandlerRecv  []atomic.Int64
	handlerIDs      []HandlerID
}

// PublishMetrics registers this rank's communication counters with reg
// under ygm_* names labeled {rank="N"} (per-handler traffic adds a
// handler label with the registered name). Call after all handlers are
// registered and before the world starts exchanging traffic. Values
// update at every barrier exit; reading between barriers returns the
// previous snapshot.
func (c *Comm) PublishMetrics(reg *obs.Registry) {
	p := &pubMetrics{}
	for id := range c.handlers {
		if HandlerID(id) < firstUserHandler {
			continue
		}
		p.handlerIDs = append(p.handlerIDs, HandlerID(id))
	}
	p.perHandlerSent = make([]atomic.Int64, len(p.handlerIDs))
	p.perHandlerRecv = make([]atomic.Int64, len(p.handlerIDs))
	c.pub = p

	rank := fmt.Sprintf(`{rank="%d"}`, c.rank)
	reg.Sample("ygm_sent_msgs"+rank, p.sentMsgs.Load)
	reg.Sample("ygm_sent_bytes"+rank, p.sentBytes.Load)
	reg.Sample("ygm_remote_sent_msgs"+rank, p.remoteSentMsgs.Load)
	reg.Sample("ygm_remote_sent_bytes"+rank, p.remoteSentBytes.Load)
	reg.Sample("ygm_recv_msgs"+rank, p.recvMsgs.Load)
	reg.Sample("ygm_flushes"+rank, p.flushes.Load)
	reg.Sample("ygm_barriers"+rank, p.barriers.Load)
	reg.Sample("ygm_mailbox_peak_depth"+rank, p.peakDepth.Load)
	reg.Sample("ygm_mailbox_peak_bytes"+rank, p.peakBytes.Load)
	reg.Sample("ygm_tasks_deferred"+rank, p.tasksDeferred.Load)
	for i, id := range p.handlerIDs {
		label := fmt.Sprintf(`{rank="%d",handler=%q}`, c.rank, c.handlerNames[id])
		reg.Sample("ygm_handler_sent_msgs"+label, p.perHandlerSent[i].Load)
		reg.Sample("ygm_handler_recv_msgs"+label, p.perHandlerRecv[i].Load)
	}
}

// publishSnapshot stores current counters into the atomic slots and
// emits mailbox-congestion counter samples onto the trace. Runs on the
// owning goroutine at barrier exit (see recordInterval).
func (c *Comm) publishSnapshot() {
	if c.pub == nil && c.trace == nil {
		return
	}
	c.mbox.mu.Lock()
	depth := int64(c.mbox.peakDepth)
	bytes := c.mbox.peakBytes
	cur := int64(len(c.mbox.q))
	c.mbox.mu.Unlock()

	if c.trace != nil {
		c.trace.Counter("ygm.mailbox.depth", cur)
		c.trace.Counter("ygm.mailbox.peak_depth", depth)
	}
	p := c.pub
	if p == nil {
		return
	}
	p.sentMsgs.Store(c.stats.SentMsgs)
	p.sentBytes.Store(c.stats.SentBytes)
	p.remoteSentMsgs.Store(c.stats.RemoteSentMsgs)
	p.remoteSentBytes.Store(c.stats.RemoteSentBytes)
	p.recvMsgs.Store(c.stats.RecvMsgs)
	p.flushes.Store(c.stats.Flushes)
	p.barriers.Store(c.stats.Barriers)
	p.peakDepth.Store(depth)
	p.peakBytes.Store(bytes)
	p.tasksDeferred.Store(c.stats.TasksDeferred)
	for i, id := range p.handlerIDs {
		p.perHandlerSent[i].Store(c.stats.PerHandler[id].SentMsgs)
		p.perHandlerRecv[i].Store(c.stats.PerHandler[id].RecvMsgs)
	}
}
