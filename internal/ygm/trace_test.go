package ygm

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"dnnd/internal/obs"
)

// TestStatsAddBarriersMax pins the aggregation semantics documented on
// Stats.Add: Barrier is collective, so every rank of an SPMD run
// reports the same count and world aggregation must take the max, not
// the sum (summing would report nranks times too many barriers).
func TestStatsAddBarriersMax(t *testing.T) {
	var world Stats
	for rank := 0; rank < 4; rank++ {
		world.Add(Stats{Barriers: 7, SentMsgs: 10})
	}
	if world.Barriers != 7 {
		t.Errorf("Barriers = %d after aggregating 4 ranks, want 7 (max, not sum)", world.Barriers)
	}
	if world.SentMsgs != 40 {
		t.Errorf("SentMsgs = %d, want 40 (sum)", world.SentMsgs)
	}
	// A straggler that died early reports fewer barriers; the
	// survivors' larger count wins.
	world.Add(Stats{Barriers: 3})
	if world.Barriers != 7 {
		t.Errorf("Barriers = %d after adding straggler, want 7", world.Barriers)
	}
	// High-water marks also take the max.
	world.Add(Stats{PeakMailboxDepth: 9, PeakMailboxBytes: 100})
	world.Add(Stats{PeakMailboxDepth: 2, PeakMailboxBytes: 400})
	if world.PeakMailboxDepth != 9 || world.PeakMailboxBytes != 400 {
		t.Errorf("peaks = %d/%d, want 9/400", world.PeakMailboxDepth, world.PeakMailboxBytes)
	}
}

// TestWorldTracing runs a traced 3-rank world and checks that the
// exported timeline has one track per rank with barrier and flush
// spans plus mailbox counter samples.
func TestWorldTracing(t *testing.T) {
	const n = 3
	tr := obs.NewTracer(4096)
	w := NewLocalWorld(n)
	w.SetTracer(tr)
	err := w.Run(func(c *Comm) error {
		h := c.Register("ping", func(c *Comm, from int, payload []byte) {})
		c.Barrier()
		for dest := 0; dest < n; dest++ {
			c.Async(dest, h, []byte("x"))
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := obs.DecodeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	spans := doc.SpanNames()
	if spans["ygm.barrier"] != 2*n {
		t.Errorf("ygm.barrier spans = %d, want %d", spans["ygm.barrier"], 2*n)
	}
	if spans["ygm.flush"] == 0 {
		t.Error("no ygm.flush spans recorded")
	}
	counters := doc.CounterNames()
	if counters["ygm.mailbox.depth"] == 0 || counters["ygm.mailbox.peak_depth"] == 0 {
		t.Errorf("mailbox counters missing: %v", counters)
	}
	for _, want := range []string{`"rank 0"`, `"rank 1"`, `"rank 2"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("track %s missing from export", want)
		}
	}
}

// TestPublishMetrics: registry samples read barrier-exit snapshots of
// the single-owner rank counters, so a dump after the run matches the
// rank's own Stats.
func TestPublishMetrics(t *testing.T) {
	const n = 2
	reg := obs.NewRegistry()
	w := NewLocalWorld(n)
	err := w.Run(func(c *Comm) error {
		h := c.Register("ping", func(c *Comm, from int, payload []byte) {})
		c.PublishMetrics(reg)
		for dest := 0; dest < n; dest++ {
			c.Async(dest, h, []byte("hello"))
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dump := reg.DumpString()
	for rank := 0; rank < n; rank++ {
		c := w.Comm(rank)
		st := c.Stats()
		for _, want := range []struct {
			name string
			val  int64
		}{
			{`ygm_sent_msgs{rank="RANK"}`, st.SentMsgs},
			{`ygm_recv_msgs{rank="RANK"}`, st.RecvMsgs},
			{`ygm_barriers{rank="RANK"}`, st.Barriers},
			{`ygm_handler_sent_msgs{rank="RANK",handler="ping"}`, 2},
		} {
			name := strings.ReplaceAll(want.name, "RANK", string(rune('0'+rank)))
			line := name + " "
			idx := strings.Index(dump, line)
			if idx < 0 {
				t.Fatalf("dump missing %q:\n%s", line, dump)
			}
			rest := dump[idx+len(line):]
			end := strings.IndexByte(rest, '\n')
			got := rest[:end]
			if got != strconv.FormatInt(want.val, 10) {
				t.Errorf("%s = %s, want %d", name, got, want.val)
			}
		}
	}
}
