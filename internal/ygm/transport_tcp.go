package ygm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// tcpTransport connects a rank to its peers with a full TCP mesh. Rank
// i listens on addrs[i], accepts connections from ranks j > i, and
// dials ranks j < i. Each frame on the wire is a 4-byte little-endian
// length followed by a batch of records (the same batch format the
// local transport passes by reference). Writes happen only on the
// rank's own goroutine, so connections need no write locking; one
// reader goroutine per peer pushes frames into the mailbox.
type tcpTransport struct {
	rank   int
	mbox   *mailbox
	ln     net.Listener
	conns  []net.Conn
	closed atomic.Bool
	wg     sync.WaitGroup
	hdr    [4]byte
}

// maxFrameBytes bounds inbound frames (a frame is at most one
// aggregation buffer plus one oversized record).
const maxFrameBytes = 1 << 30

// dialTimeout bounds the whole mesh setup.
const dialTimeout = 30 * time.Second

// NewTCPComm creates a rank endpoint connected to its peers over TCP.
// addrs lists one listen address per rank ("host:port"); every process
// must pass the same slice. The call blocks until the mesh is fully
// connected. Close the returned Comm to tear the mesh down.
func NewTCPComm(rank int, addrs []string) (*Comm, error) {
	n := len(addrs)
	if rank < 0 || rank >= n {
		return nil, fmt.Errorf("ygm: rank %d out of range for %d addresses", rank, n)
	}
	c := newComm(rank, n)
	tp := &tcpTransport{rank: rank, mbox: c.mbox, conns: make([]net.Conn, n)}

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("ygm: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	tp.ln = ln

	type acceptResult struct {
		peer int
		conn net.Conn
		err  error
	}
	wantAccepts := n - 1 - rank // peers j > rank dial us
	acceptCh := make(chan acceptResult, wantAccepts)
	go func() {
		for i := 0; i < wantAccepts; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptCh <- acceptResult{err: err}
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(conn, hello[:]); err != nil {
				acceptCh <- acceptResult{err: err}
				return
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= rank || peer >= n {
				acceptCh <- acceptResult{err: fmt.Errorf("bad peer rank %d", peer)}
				return
			}
			acceptCh <- acceptResult{peer: peer, conn: conn}
		}
	}()

	// Dial every lower rank, retrying while its listener comes up.
	deadline := time.Now().Add(dialTimeout)
	for peer := 0; peer < rank; peer++ {
		var conn net.Conn
		for {
			conn, err = net.DialTimeout("tcp", addrs[peer], time.Second)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				tp.teardown()
				return nil, fmt.Errorf("ygm: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		var hello [4]byte
		binary.LittleEndian.PutUint32(hello[:], uint32(rank))
		if _, err := conn.Write(hello[:]); err != nil {
			tp.teardown()
			return nil, fmt.Errorf("ygm: rank %d handshake with %d: %w", rank, peer, err)
		}
		tp.conns[peer] = conn
	}

	for i := 0; i < wantAccepts; i++ {
		res := <-acceptCh
		if res.err != nil {
			tp.teardown()
			return nil, fmt.Errorf("ygm: rank %d accept: %w", rank, res.err)
		}
		tp.conns[res.peer] = res.conn
	}

	for peer, conn := range tp.conns {
		if conn == nil {
			continue
		}
		tp.wg.Add(1)
		go tp.readLoop(peer, conn)
	}
	c.tp = tp
	return c, nil
}

func (t *tcpTransport) readLoop(peer int, conn net.Conn) {
	defer t.wg.Done()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			if !t.closed.Load() {
				// Peer died or link broke: unblock the owning rank so
				// the failure surfaces instead of hanging in Barrier.
				t.mbox.close()
			}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 {
			// Graceful goodbye: the peer is done with the world (all
			// collectives completed on its side); its socket closing
			// is expected and must not abort this rank.
			return
		}
		if n > maxFrameBytes {
			t.mbox.close()
			return
		}
		buf := getFrame(int(n))[:n]
		if _, err := io.ReadFull(conn, buf); err != nil {
			if !t.closed.Load() {
				t.mbox.close()
			}
			return
		}
		t.mbox.push(delivery{from: peer, buf: buf})
	}
}

func (t *tcpTransport) Send(dest int, buf []byte) error {
	if dest == t.rank {
		t.mbox.push(delivery{from: t.rank, buf: buf})
		return nil
	}
	conn := t.conns[dest]
	if conn == nil {
		return fmt.Errorf("ygm: no connection to rank %d", dest)
	}
	binary.LittleEndian.PutUint32(t.hdr[:], uint32(len(buf)))
	if _, err := conn.Write(t.hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(buf)
	// The frame is on the socket (or the link is dead); either way the
	// sender is done with it. Self-sends above instead hand ownership to
	// the mailbox, and dispatch releases them.
	putFrame(buf)
	return err
}

func (t *tcpTransport) teardown() {
	if t.ln != nil {
		t.ln.Close()
	}
	for _, conn := range t.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

func (t *tcpTransport) Close() error {
	t.closed.Store(true)
	// Announce a graceful close (zero-length frame) so peers do not
	// mistake the socket teardown for a failure.
	var bye [4]byte
	for dest, conn := range t.conns {
		if conn != nil && dest != t.rank {
			conn.Write(bye[:])
		}
	}
	t.teardown()
	t.wg.Wait()
	return nil
}

// Close releases the Comm's transport resources (the TCP mesh; a no-op
// for local worlds).
func (c *Comm) Close() error { return c.tp.Close() }
