package ygm

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// World is a set of ranks wired by the in-memory local transport. It is
// the stand-in for "N compute nodes" in the scaling experiments: each
// rank runs the SPMD function on its own goroutine, and all inter-rank
// traffic crosses the same serialize-send-dispatch path the TCP
// transport uses.
type World struct {
	comms []*Comm
}

// localTransport delivers frames straight into the destination rank's
// mailbox.
type localTransport struct {
	world *World
	from  int
}

func (t *localTransport) Send(dest int, buf []byte) error {
	t.world.comms[dest].mbox.push(delivery{from: t.from, buf: buf})
	return nil
}

func (t *localTransport) Close() error { return nil }

// NewLocalWorld creates a world of n ranks connected in memory.
func NewLocalWorld(n int) *World {
	if n < 1 {
		panic("ygm: world size must be >= 1")
	}
	w := &World{comms: make([]*Comm, n)}
	for i := 0; i < n; i++ {
		w.comms[i] = newComm(i, n)
	}
	for i := 0; i < n; i++ {
		w.comms[i].tp = &localTransport{world: w, from: i}
	}
	return w
}

// NRanks returns the world size.
func (w *World) NRanks() int { return len(w.comms) }

// Comm returns rank i's endpoint (mainly for tests and stats).
func (w *World) Comm(i int) *Comm { return w.comms[i] }

// errWorldAborted is the panic value a rank raises when its mailbox is
// closed under it, i.e. when another rank failed and the world is being
// torn down. Run prefers the primary failure over these secondary ones.
var errWorldAborted = errors.New("ygm: world aborted by another rank's failure")

// RankError reports which rank failed inside Run.
type RankError struct {
	Rank  int
	Err   error
	Stack string
}

func (e *RankError) Error() string {
	return fmt.Sprintf("ygm: rank %d failed: %v", e.Rank, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// Run executes fn on every rank concurrently (SPMD) and waits for all
// of them. Panics inside a rank — including handler panics and
// transport failures — are captured and returned as a *RankError; the
// first failing rank wins. After a failed run the world must be
// discarded (peer ranks may be blocked; their mailboxes are closed to
// unblock them).
func (w *World) Run(fn func(c *Comm) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(w.comms))
	for i := range w.comms {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					err, isErr := r.(error)
					if !isErr {
						err = fmt.Errorf("panic: %v", r)
					}
					errs[rank] = &RankError{
						Rank:  rank,
						Err:   err,
						Stack: string(debug.Stack()),
					}
					// Unblock peers waiting on their mailboxes.
					for _, c := range w.comms {
						c.mbox.close()
					}
				}
			}()
			w.comms[rank].BindOwner()
			if err := fn(w.comms[rank]); err != nil {
				errs[rank] = &RankError{Rank: rank, Err: err}
				for _, c := range w.comms {
					c.mbox.close()
				}
			}
		}(i)
	}
	wg.Wait()
	// Prefer the primary failure over secondary world-aborted panics
	// from ranks that were unblocked during teardown.
	for _, err := range errs {
		if err != nil && !errors.Is(err, errWorldAborted) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AggregateStats sums counters over all ranks.
func (w *World) AggregateStats() Stats {
	var total Stats
	for _, c := range w.comms {
		total.Add(c.Stats())
	}
	return total
}

// IntervalsPerRank collects every rank's barrier-interval statistics.
func (w *World) IntervalsPerRank() [][]IntervalStats {
	out := make([][]IntervalStats, len(w.comms))
	for i, c := range w.comms {
		out[i] = c.Intervals()
	}
	return out
}
