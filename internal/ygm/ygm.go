// Package ygm is a from-scratch reimplementation of the communication
// model DNND needs from LLNL's YGM library: asynchronous fire-and-forget
// remote procedure calls with sender-side message aggregation, a global
// barrier that waits for quiescence (all messages, including messages
// sent by message handlers, processed), and message/byte counters.
//
// The paper runs YGM over MPI on an HPC interconnect. Here a "world" of
// ranks is either a set of goroutines exchanging serialized byte frames
// through in-memory mailboxes (the local transport) or a set of
// processes/goroutines connected by a TCP mesh (the tcp transport). In
// both cases every message crosses a serialization boundary, so message
// counts and byte volumes — the quantities Figure 4 of the paper
// reports — are measured on real encoded traffic.
//
// Concurrency model (mirrors YGM/MPI): each rank is a single logical
// thread. Handlers only ever execute on the owning rank's goroutine,
// inside Async, Barrier, or AllReduce calls (the "progress engine"), so
// rank-local state needs no locking. Handlers may themselves call Async;
// such nested sends are buffered and flushed by the progress engine.
package ygm

import (
	"fmt"
	"sync"
	"time"

	"dnnd/internal/obs"
	"dnnd/internal/wire"
)

// HandlerID identifies a registered message handler. Like YGM, handler
// registration must happen in the same order on every rank so the IDs
// agree across the world.
type HandlerID uint16

// Handler is a message callback. It runs on the destination rank's
// goroutine with the sender's rank and the message payload. The payload
// slice aliases the receive buffer and must not be retained after the
// handler returns; decode what you need.
type Handler func(c *Comm, from int, payload []byte)

// Control-plane handler IDs occupy the low range; user registration
// starts at firstUserHandler.
const (
	hdlIdleReport HandlerID = iota
	hdlConfirm
	hdlConfirmAck
	hdlRelease
	hdlReduceContrib
	hdlReduceResult
	firstUserHandler
)

// recordHeaderBytes is the per-message framing overhead (2-byte handler
// ID + 4-byte payload length), counted into byte volumes.
const recordHeaderBytes = 6

// defaultFlushBytes is the sender-side aggregation threshold per
// destination; buffers are handed to the transport when they exceed it.
const defaultFlushBytes = 32 << 10

// pollInterval controls how often Async opportunistically drains the
// mailbox (every pollInterval-th call).
const pollInterval = 64

// delivery is one batch of records from a single sender.
type delivery struct {
	from int
	buf  []byte
}

// mailbox is the multi-producer single-consumer inbound queue of a rank.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []delivery
	closed bool
	// peakDepth and peakBytes are high-water marks of queued
	// deliveries, the congestion signal behind the paper's Section 4.4
	// batching (YGM "has no real-time global knowledge of the number
	// of messages in all processes' buffers").
	peakDepth int
	peakBytes int64
	curBytes  int64
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) push(d delivery) {
	m.mu.Lock()
	m.q = append(m.q, d)
	m.curBytes += int64(len(d.buf))
	if len(m.q) > m.peakDepth {
		m.peakDepth = len(m.q)
	}
	if m.curBytes > m.peakBytes {
		m.peakBytes = m.curBytes
	}
	m.mu.Unlock()
	m.cond.Signal()
}

func (m *mailbox) tryPop() (delivery, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.q) == 0 {
		return delivery{}, false
	}
	d := m.q[0]
	m.q[0] = delivery{}
	m.q = m.q[1:]
	m.curBytes -= int64(len(d.buf))
	return d, true
}

// popBlocking waits until a delivery is available or the mailbox is
// closed.
func (m *mailbox) popBlocking() (delivery, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.q) == 0 {
		return delivery{}, false
	}
	d := m.q[0]
	m.q[0] = delivery{}
	m.q = m.q[1:]
	m.curBytes -= int64(len(d.buf))
	return d, true
}

func (m *mailbox) empty() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.q) == 0
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Transport moves encoded record batches between ranks. Deliveries
// arrive at the destination Comm's mailbox (the transport holds a
// reference to it).
type Transport interface {
	// Send transfers ownership of buf (a batch of encoded records) to
	// the destination rank.
	Send(dest int, buf []byte) error
	// Close releases transport resources.
	Close() error
}

// Comm is one rank's endpoint in a world. It is not safe for concurrent
// use by multiple goroutines; like an MPI rank, exactly one goroutine
// drives it.
type Comm struct {
	rank   int
	nranks int
	tp     Transport
	mbox   *mailbox

	handlers     []Handler
	handlerNames []string

	out        [][]byte // per-destination aggregation buffers
	flushBytes int

	stats      Stats
	intervals  []IntervalStats
	intervalAt IntervalStats // counters snapshot at last barrier exit
	work       float64       // app-reported work units (see AddWork)

	inDrain   bool
	asyncTick int

	// AsyncWriter state: the reused writer wrapping the reserved
	// region of out[awDest], and the promised record shape (see
	// AsyncWriter / FinishAsyncWriter).
	aw     wire.Writer
	awDest int
	awLen  int
	awH    HandlerID

	// Deferred-local-work hook and single-owner enforcement; see
	// localwork.go for the rules.
	localWorkRun     func() bool
	localWorkPending func() bool
	owner            uint64 // owning goroutine ID; 0 = unbound

	// Barrier / quiescence state.
	inBarrier  bool
	epoch      uint64
	released   bool
	needReport bool
	coord      *coordState // non-nil on rank 0

	// AllReduce state.
	reduceSeq     uint64
	reduceResults map[uint64][]byte
	reduceAccum   map[uint64]*reduceAccum

	// Observability hooks (both optional; see trace.go).
	trace *obs.Track
	pub   *pubMetrics

	// err records a transport failure; surfaced by Barrier/Async panics.
	err error
}

// newComm wires up a Comm; the transport is attached afterwards by the
// world constructor (transports need the mailbox first).
func newComm(rank, nranks int) *Comm {
	c := &Comm{
		rank:          rank,
		nranks:        nranks,
		mbox:          newMailbox(),
		out:           make([][]byte, nranks),
		flushBytes:    defaultFlushBytes,
		reduceResults: make(map[uint64][]byte),
		reduceAccum:   make(map[uint64]*reduceAccum),
	}
	if rank == 0 {
		c.coord = newCoordState(nranks)
	}
	// PerHandler must exist before the control handlers register, or
	// their entries (and names) would be wiped here.
	c.stats.PerHandler = make([]HandlerStats, 0, 16)
	c.registerControlHandlers()
	return c
}

// Rank returns this endpoint's rank in [0, NRanks).
func (c *Comm) Rank() int { return c.rank }

// NRanks returns the world size.
func (c *Comm) NRanks() int { return c.nranks }

// SetFlushThreshold overrides the sender-side aggregation threshold in
// bytes. Must be called before any Async.
func (c *Comm) SetFlushThreshold(n int) {
	if n < 1 {
		n = 1
	}
	c.flushBytes = n
}

// Register installs a message handler and returns its ID. Every rank
// must register the same handlers in the same order (the YGM
// convention); the name is recorded for stats output.
func (c *Comm) Register(name string, h Handler) HandlerID {
	id := HandlerID(len(c.handlers))
	c.handlers = append(c.handlers, h)
	c.handlerNames = append(c.handlerNames, name)
	for len(c.stats.PerHandler) <= int(id) {
		c.stats.PerHandler = append(c.stats.PerHandler, HandlerStats{})
	}
	c.stats.PerHandler[id].Name = name
	return id
}

func (c *Comm) registerControlHandlers() {
	// Order must match the hdl* constants.
	c.Register("_idle", handleIdleReport)
	c.Register("_confirm", handleConfirm)
	c.Register("_confirmAck", handleConfirmAck)
	c.Register("_release", handleRelease)
	c.Register("_reduceContrib", handleReduceContrib)
	c.Register("_reduceResult", handleReduceResult)
}

// Async sends a fire-and-forget message: handler h runs on rank dest at
// some future time with the given payload. The payload is copied
// immediately; the caller may reuse it. Messages to self go through the
// same path (encoded, counted, delivered via the mailbox).
func (c *Comm) Async(dest int, h HandlerID, payload []byte) {
	if dest < 0 || dest >= c.nranks {
		panic(fmt.Sprintf("ygm: Async dest %d out of range (nranks=%d)", dest, c.nranks))
	}
	if int(h) >= len(c.handlers) {
		panic(fmt.Sprintf("ygm: Async with unregistered handler %d", h))
	}
	c.enqueue(dest, h, payload, true)

	// Opportunistic progress, YGM-style: drain inbound traffic during
	// long send loops so mailboxes stay bounded. Never re-entered from
	// inside a handler.
	if !c.inDrain {
		c.asyncTick++
		if c.asyncTick >= pollInterval {
			c.asyncTick = 0
			if ownerCheckAsync {
				c.assertOwner()
			}
			c.drainAll()
		}
	}
}

// AsyncWriter is Async for fixed-size messages without the staging
// copy: it reserves exactly n payload bytes directly in dest's
// aggregation buffer and returns a wire.Writer positioned on them. The
// caller must encode exactly n bytes and then call FinishAsyncWriter —
// the pair replaces one full payload copy per message, which matters
// on the check-phase path where every message carries a feature
// vector. Between the two calls no other send may touch the comm.
// Observably identical to encoding into scratch and calling Async: the
// same record bytes land in the same buffer positions and the same
// stats are counted.
func (c *Comm) AsyncWriter(dest int, h HandlerID, n int) *wire.Writer {
	if dest < 0 || dest >= c.nranks {
		panic(fmt.Sprintf("ygm: AsyncWriter dest %d out of range (nranks=%d)", dest, c.nranks))
	}
	if int(h) >= len(c.handlers) {
		panic(fmt.Sprintf("ygm: AsyncWriter with unregistered handler %d", h))
	}
	buf := c.out[dest]
	if buf == nil {
		buf = getFrame(c.flushBytes + 256)
	}
	buf = append(buf, byte(h), byte(h>>8),
		byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	base := len(buf)
	if cap(buf) < base+n {
		next := make([]byte, base, cap(buf)*2+base+n)
		copy(next, buf)
		buf = next
	}
	c.out[dest] = buf
	c.awDest, c.awLen, c.awH = dest, n, h
	c.aw.Wrap(buf[base:base:cap(buf)])
	return &c.aw
}

// FinishAsyncWriter commits the record started by AsyncWriter. The
// writer must hold exactly the promised byte count.
func (c *Comm) FinishAsyncWriter(w *wire.Writer) {
	dest, n := c.awDest, c.awLen
	if w != &c.aw || w.Len() != n {
		panic(fmt.Sprintf("ygm: AsyncWriter promised %d payload bytes, encoded %d", n, w.Len()))
	}
	buf := c.out[dest]
	// The writer filled the reserved region in place; a grow would have
	// detached it from the buffer and broken the record framing.
	c.out[dest] = buf[:len(buf)+n]

	size := int64(n + recordHeaderBytes)
	c.stats.SentMsgs++
	c.stats.SentBytes += size
	if dest != c.rank {
		c.stats.RemoteSentMsgs++
		c.stats.RemoteSentBytes += size
	}
	hs := &c.stats.PerHandler[c.awH]
	hs.SentMsgs++
	hs.SentBytes += size
	if len(c.out[dest]) >= c.flushBytes {
		c.flushDest(dest)
	}
	if !c.inDrain {
		c.asyncTick++
		if c.asyncTick >= pollInterval {
			c.asyncTick = 0
			if ownerCheckAsync {
				c.assertOwner()
			}
			c.drainAll()
		}
	}
}

// enqueue appends one record to the destination's aggregation buffer
// and accounts for it.
func (c *Comm) enqueue(dest int, h HandlerID, payload []byte, isApp bool) {
	buf := c.out[dest]
	if buf == nil {
		buf = getFrame(c.flushBytes + 256)
	}
	n := len(payload)
	buf = append(buf, byte(h), byte(h>>8),
		byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	buf = append(buf, payload...)
	c.out[dest] = buf

	if isApp {
		size := int64(n + recordHeaderBytes)
		c.stats.SentMsgs++
		c.stats.SentBytes += size
		if dest != c.rank {
			c.stats.RemoteSentMsgs++
			c.stats.RemoteSentBytes += size
		}
		hs := &c.stats.PerHandler[h]
		hs.SentMsgs++
		hs.SentBytes += size
	}
	if len(c.out[dest]) >= c.flushBytes {
		c.flushDest(dest)
	}
}

// sendCtrl transmits a control record immediately, bypassing the
// aggregation buffers so that barrier progress does not depend on flush
// thresholds. Control traffic is excluded from app counters.
func (c *Comm) sendCtrl(dest int, h HandlerID, payload []byte) {
	n := len(payload)
	buf := getFrame(n + recordHeaderBytes)
	buf = append(buf, byte(h), byte(h>>8),
		byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	buf = append(buf, payload...)
	if err := c.tp.Send(dest, buf); err != nil && c.err == nil {
		c.err = err
	}
}

func (c *Comm) flushDest(dest int) {
	buf := c.out[dest]
	if len(buf) == 0 {
		return
	}
	sp := c.trace.BeginArg("ygm.flush", int64(len(buf)))
	c.out[dest] = nil
	c.stats.Flushes++
	if err := c.tp.Send(dest, buf); err != nil && c.err == nil {
		c.err = err
	}
	sp.End()
}

// Flush pushes all aggregation buffers to the transport without
// waiting for delivery.
func (c *Comm) Flush() {
	for dest := range c.out {
		c.flushDest(dest)
	}
}

func (c *Comm) outboxesEmpty() bool {
	for _, b := range c.out {
		if len(b) > 0 {
			return false
		}
	}
	return true
}

// drainAll processes every delivery currently queued in the mailbox and
// reports whether any record was dispatched.
func (c *Comm) drainAll() bool {
	any := false
	for {
		d, ok := c.mbox.tryPop()
		if !ok {
			return any
		}
		c.dispatch(d)
		any = true
	}
}

// dispatch decodes and runs every record in one delivery.
func (c *Comm) dispatch(d delivery) {
	wasDraining := c.inDrain
	c.inDrain = true
	defer func() { c.inDrain = wasDraining }()

	buf := d.buf
	off := 0
	for off < len(buf) {
		if off+recordHeaderBytes > len(buf) {
			panic(fmt.Sprintf("ygm: rank %d received truncated record header from %d", c.rank, d.from))
		}
		h := HandlerID(buf[off]) | HandlerID(buf[off+1])<<8
		n := int(buf[off+2]) | int(buf[off+3])<<8 | int(buf[off+4])<<16 | int(buf[off+5])<<24
		off += recordHeaderBytes
		if off+n > len(buf) {
			panic(fmt.Sprintf("ygm: rank %d received truncated record payload from %d", c.rank, d.from))
		}
		payload := buf[off : off+n]
		off += n
		if int(h) >= len(c.handlers) {
			panic(fmt.Sprintf("ygm: rank %d received unknown handler %d from %d", c.rank, h, d.from))
		}
		c.handlers[h](c, d.from, payload)
		if h >= firstUserHandler {
			c.stats.RecvMsgs++
			c.stats.PerHandler[h].RecvMsgs++
			if c.inBarrier {
				c.needReport = true
			}
		}
	}
	// All records dispatched; the frame can carry outbound traffic next.
	// (Payload views are dead here by the Handler contract.)
	putFrame(buf)
}

// AddWork accrues application-reported work units on this rank (the
// DNND core reports one unit per vector-element operation). Interval
// work feeds the modeled strong-scaling times; see IntervalStats.
func (c *Comm) AddWork(units float64) { c.work += units }

// Work returns the total accrued work units.
func (c *Comm) Work() float64 { return c.work }

// Stats returns a snapshot of this rank's counters, including the
// mailbox congestion high-water marks.
func (c *Comm) Stats() Stats {
	s := c.stats.clone()
	c.mbox.mu.Lock()
	s.PeakMailboxDepth = int64(c.mbox.peakDepth)
	s.PeakMailboxBytes = c.mbox.peakBytes
	c.mbox.mu.Unlock()
	return s
}

// HandlerName returns the registered name for id (for reports).
func (c *Comm) HandlerName(id HandlerID) string {
	if int(id) < len(c.handlerNames) {
		return c.handlerNames[id]
	}
	return fmt.Sprintf("handler-%d", id)
}

// Intervals returns the per-barrier-interval statistics collected so
// far. Index i covers the span between barrier exits i-1 and i.
func (c *Comm) Intervals() []IntervalStats {
	out := make([]IntervalStats, len(c.intervals))
	copy(out, c.intervals)
	return out
}

// checkErr surfaces transport failures to the caller; the SPMD runner
// converts the panic into an error return.
func (c *Comm) checkErr() {
	if c.err != nil {
		panic(fmt.Sprintf("ygm: rank %d transport failure: %v", c.rank, c.err))
	}
}

// recordInterval snapshots counters at a barrier exit (and refreshes
// the published metrics snapshot / trace counter tracks, if attached).
func (c *Comm) recordInterval() {
	c.publishSnapshot()
	cur := IntervalStats{
		SentMsgs:  c.stats.SentMsgs,
		SentBytes: c.stats.SentBytes,
		Work:      c.work,
		WallTime:  time.Since(startTime),
	}
	delta := IntervalStats{
		SentMsgs:  cur.SentMsgs - c.intervalAt.SentMsgs,
		SentBytes: cur.SentBytes - c.intervalAt.SentBytes,
		Work:      cur.Work - c.intervalAt.Work,
		WallTime:  cur.WallTime - c.intervalAt.WallTime,
	}
	c.intervals = append(c.intervals, delta)
	c.intervalAt = cur
}

var startTime = time.Now()
