package ygm

import "testing"

// BenchmarkAsyncLocal measures fire-and-forget message throughput on
// the local transport (enqueue + aggregate + dispatch), the
// per-message cost every DNND phase pays.
func BenchmarkAsyncLocal(b *testing.B) {
	w := NewLocalWorld(2)
	payload := make([]byte, 32)
	b.SetBytes(int64(len(payload) + recordHeaderBytes))
	b.ResetTimer()
	err := w.Run(func(c *Comm) error {
		h := c.Register("h", func(c *Comm, from int, p []byte) {})
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				c.Async(1, h, payload)
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures the quiescence barrier's round-trip cost
// with no outstanding traffic (the lower bound every superstep pays).
func BenchmarkBarrier(b *testing.B) {
	w := NewLocalWorld(4)
	b.ResetTimer()
	err := w.Run(func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllReduce measures the collective used for DNND's
// convergence checks.
func BenchmarkAllReduce(b *testing.B) {
	w := NewLocalWorld(4)
	b.ResetTimer()
	err := w.Run(func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if got := c.AllReduceSum(1); got != 4 {
				return errWorldAborted
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
