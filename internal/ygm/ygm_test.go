package ygm

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"

	"dnnd/internal/wire"
)

// TestPingCounting: every rank sends a counted ping to every other
// rank; after the barrier all pings must have been processed.
func TestPingCounting(t *testing.T) {
	const n = 4
	const pingsPerPair = 100
	w := NewLocalWorld(n)
	var processed [n]int64

	err := w.Run(func(c *Comm) error {
		ping := c.Register("ping", func(c *Comm, from int, payload []byte) {
			atomic.AddInt64(&processed[c.Rank()], 1)
		})
		for dest := 0; dest < n; dest++ {
			if dest == c.Rank() {
				continue
			}
			for i := 0; i < pingsPerPair; i++ {
				c.Async(dest, ping, []byte{byte(i)})
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		if processed[r] != (n-1)*pingsPerPair {
			t.Errorf("rank %d processed %d, want %d", r, processed[r], (n-1)*pingsPerPair)
		}
	}
	agg := w.AggregateStats()
	want := int64(n * (n - 1) * pingsPerPair)
	if agg.SentMsgs != want || agg.RecvMsgs != want {
		t.Errorf("sent=%d recv=%d, want %d", agg.SentMsgs, agg.RecvMsgs, want)
	}
	if agg.RemoteSentMsgs != want {
		t.Errorf("remote sent=%d, want %d (no self messages here)", agg.RemoteSentMsgs, want)
	}
}

// TestSelfMessages: messages to self go through the same counted path.
func TestSelfMessages(t *testing.T) {
	w := NewLocalWorld(2)
	var got [2]int64
	err := w.Run(func(c *Comm) error {
		h := c.Register("self", func(c *Comm, from int, payload []byte) {
			if from != c.Rank() {
				return
			}
			atomic.AddInt64(&got[c.Rank()], 1)
		})
		for i := 0; i < 10; i++ {
			c.Async(c.Rank(), h, nil)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 10 {
		t.Errorf("self deliveries = %v", got)
	}
	if remote := w.AggregateStats().RemoteSentMsgs; remote != 0 {
		t.Errorf("remote sent = %d, want 0", remote)
	}
}

// TestNestedHandlerChain models the Type1 -> Type2 -> Type3 pattern:
// handlers send further messages and the barrier must wait for the
// whole cascade.
func TestNestedHandlerChain(t *testing.T) {
	const n = 3
	const seeds = 50
	w := NewLocalWorld(n)
	var finals int64

	err := w.Run(func(c *Comm) error {
		var h1, h2, h3 HandlerID
		h3 = c.Register("t3", func(c *Comm, from int, payload []byte) {
			atomic.AddInt64(&finals, 1)
		})
		h2 = c.Register("t2", func(c *Comm, from int, payload []byte) {
			dest := int(payload[0])
			c.Async(dest, h3, nil)
		})
		h1 = c.Register("t1", func(c *Comm, from int, payload []byte) {
			dest := int(payload[0])
			c.Async(dest, h2, []byte{byte(from)})
		})
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		for i := 0; i < seeds; i++ {
			c.Async(rng.Intn(n), h1, []byte{byte(rng.Intn(n))})
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if finals != n*seeds {
		t.Errorf("finals = %d, want %d", finals, n*seeds)
	}
}

// TestQuiescenceStorm: random multi-hop cascades with fan-out; the sum
// of all hops is known in advance, and the barrier must not release
// until the last hop has run.
func TestQuiescenceStorm(t *testing.T) {
	const n = 5
	const seedsPerRank = 40
	const depth = 6
	w := NewLocalWorld(n)
	var hops int64

	err := w.Run(func(c *Comm) error {
		var hop HandlerID
		hop = c.Register("hop", func(c *Comm, from int, payload []byte) {
			atomic.AddInt64(&hops, 1)
			remaining := payload[0]
			if remaining == 0 {
				return
			}
			// Deterministic fan-out: 2 children until depth exhausted.
			next := []byte{remaining - 1}
			c.Async((c.Rank()+1)%n, hop, next)
			c.Async((c.Rank()+2)%n, hop, next)
		})
		for i := 0; i < seedsPerRank; i++ {
			c.Async((c.Rank()+i)%n, hop, []byte{depth})
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each seed produces 2^(depth+1)-1 hops.
	want := int64(n * seedsPerRank * ((1 << (depth + 1)) - 1))
	if hops != want {
		t.Errorf("hops = %d, want %d", hops, want)
	}
}

// TestRepeatedBarriers: supersteps with traffic in between; each round
// must be fully quiescent before the next starts.
func TestRepeatedBarriers(t *testing.T) {
	const n = 4
	const rounds = 10
	w := NewLocalWorld(n)

	err := w.Run(func(c *Comm) error {
		var round int64
		var mismatch error
		h := c.Register("echo", func(c *Comm, from int, payload []byte) {
			r := wire.NewReader(payload)
			sentRound := r.Int64()
			if sentRound != atomic.LoadInt64(&round) && mismatch == nil {
				mismatch = fmt.Errorf("rank %d got round %d during round %d",
					c.Rank(), sentRound, atomic.LoadInt64(&round))
			}
		})
		for r := 0; r < rounds; r++ {
			atomic.StoreInt64(&round, int64(r))
			w := wire.NewWriter(8)
			w.Int64(int64(r))
			for dest := 0; dest < n; dest++ {
				c.Async(dest, h, w.Bytes())
			}
			c.Barrier()
			if mismatch != nil {
				return mismatch
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Comm(0).Stats().Barriers; got != rounds {
		t.Errorf("barriers = %d, want %d", got, rounds)
	}
}

func TestBarrierWithNoTraffic(t *testing.T) {
	w := NewLocalWorld(3)
	err := w.Run(func(c *Comm) error {
		c.Barrier()
		c.Barrier()
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankWorld(t *testing.T) {
	w := NewLocalWorld(1)
	count := 0
	err := w.Run(func(c *Comm) error {
		h := c.Register("inc", func(c *Comm, from int, payload []byte) { count++ })
		for i := 0; i < 5; i++ {
			c.Async(0, h, nil)
		}
		c.Barrier()
		if got := c.AllReduceSum(7); got != 7 {
			return fmt.Errorf("allreduce on 1 rank = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestAllReduce(t *testing.T) {
	const n = 5
	w := NewLocalWorld(n)
	err := w.Run(func(c *Comm) error {
		r := int64(c.Rank())
		if got := c.AllReduceSum(r + 1); got != n*(n+1)/2 {
			return fmt.Errorf("sum = %d", got)
		}
		if got := c.AllReduceMax(r); got != n-1 {
			return fmt.Errorf("max = %d", got)
		}
		if got := c.AllReduceMin(r); got != 0 {
			return fmt.Errorf("min = %d", got)
		}
		if got := c.AllReduceSumFloat(0.5); got != n*0.5 {
			return fmt.Errorf("fsum = %v", got)
		}
		if got := c.AllReduceMaxFloat(float64(c.Rank())); got != n-1 {
			return fmt.Errorf("fmax = %v", got)
		}
		// Back-to-back reductions must not mix sequence numbers.
		for i := 0; i < 20; i++ {
			if got := c.AllReduceSum(int64(i)); got != int64(i*n) {
				return fmt.Errorf("seq %d sum = %d, want %d", i, got, i*n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllReduceInterleavedWithTraffic: reductions act as collectives in
// the middle of async phases (the DNND termination check pattern).
func TestAllReduceInterleavedWithTraffic(t *testing.T) {
	const n = 4
	w := NewLocalWorld(n)
	err := w.Run(func(c *Comm) error {
		var local int64
		h := c.Register("add", func(c *Comm, from int, payload []byte) {
			local++
		})
		for round := 0; round < 5; round++ {
			for i := 0; i < 100; i++ {
				c.Async(i%n, h, nil)
			}
			c.Barrier()
			total := c.AllReduceSum(local)
			if total != int64(n*100*(round+1)) {
				return fmt.Errorf("round %d total = %d", round, total)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerHandlerStats(t *testing.T) {
	w := NewLocalWorld(2)
	// Registration order is identical on every rank, so the IDs are
	// deterministic.
	const hA, hB = firstUserHandler, firstUserHandler + 1
	err := w.Run(func(c *Comm) error {
		a := c.Register("a", func(c *Comm, from int, payload []byte) {})
		b := c.Register("b", func(c *Comm, from int, payload []byte) {})
		if a != hA || b != hB {
			return fmt.Errorf("unexpected handler ids %d %d", a, b)
		}
		if c.Rank() == 0 {
			c.Async(1, hA, make([]byte, 10))
			c.Async(1, hA, make([]byte, 10))
			c.Async(1, hB, make([]byte, 20))
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Comm(0).Stats()
	if st.PerHandler[hA].SentMsgs != 2 || st.PerHandler[hB].SentMsgs != 1 {
		t.Errorf("per-handler counts: %+v", st.PerHandler)
	}
	if st.PerHandler[hA].SentBytes != 2*(10+recordHeaderBytes) {
		t.Errorf("handler a bytes = %d", st.PerHandler[hA].SentBytes)
	}
	if st.PerHandler[hB].SentBytes != 20+recordHeaderBytes {
		t.Errorf("handler b bytes = %d", st.PerHandler[hB].SentBytes)
	}
	st1 := w.Comm(1).Stats()
	if st1.PerHandler[hA].RecvMsgs != 2 || st1.PerHandler[hB].RecvMsgs != 1 {
		t.Errorf("receiver per-handler counts: %+v", st1.PerHandler)
	}
	if w.Comm(0).HandlerName(hA) != "a" {
		t.Errorf("handler name = %q", w.Comm(0).HandlerName(hA))
	}
}

func TestRunPropagatesRankError(t *testing.T) {
	w := NewLocalWorld(3)
	sentinel := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		c.Barrier() // would hang forever without mailbox close on error
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RankError", err)
	}
	if !errors.Is(err, sentinel) && re.Rank != 1 {
		t.Errorf("unexpected rank error: %+v", re)
	}
}

func TestRunRecoversHandlerPanic(t *testing.T) {
	w := NewLocalWorld(2)
	err := w.Run(func(c *Comm) error {
		h := c.Register("explode", func(c *Comm, from int, payload []byte) {
			panic("handler exploded")
		})
		if c.Rank() == 0 {
			c.Async(1, h, nil)
		}
		c.Barrier()
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RankError", err)
	}
}

func TestAsyncValidation(t *testing.T) {
	w := NewLocalWorld(1)
	err := w.Run(func(c *Comm) error {
		h := c.Register("h", func(c *Comm, from int, payload []byte) {})
		defer func() { recover() }()
		c.Async(5, h, nil) // out of range: must panic
		return errors.New("Async accepted bad destination")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlushThresholdForcesManyFrames(t *testing.T) {
	w := NewLocalWorld(2)
	err := w.Run(func(c *Comm) error {
		c.SetFlushThreshold(16) // tiny: nearly every message flushes
		h := c.Register("h", func(c *Comm, from int, payload []byte) {})
		if c.Rank() == 0 {
			for i := 0; i < 200; i++ {
				c.Async(1, h, make([]byte, 32))
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fl := w.Comm(0).Stats().Flushes; fl < 200 {
		t.Errorf("flushes = %d, want >= 200 with tiny threshold", fl)
	}
}

func TestIntervalStatsAndCostModel(t *testing.T) {
	const n = 2
	w := NewLocalWorld(n)
	err := w.Run(func(c *Comm) error {
		h := c.Register("h", func(c *Comm, from int, payload []byte) {})
		c.AddWork(100)
		c.Async((c.Rank()+1)%n, h, make([]byte, 10))
		c.Barrier()
		c.AddWork(50)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	per := w.IntervalsPerRank()
	if len(per) != n || len(per[0]) != 2 {
		t.Fatalf("intervals shape: %d ranks x %d", len(per), len(per[0]))
	}
	if per[0][0].Work != 100 || per[0][1].Work != 50 {
		t.Errorf("interval work = %+v", per[0])
	}
	if per[0][0].SentMsgs != 1 {
		t.Errorf("interval msgs = %d", per[0][0].SentMsgs)
	}
	if got := TotalWork(per); got != n*150 {
		t.Errorf("TotalWork = %v", got)
	}
	m := CostModel{SecPerWorkUnit: 1, SecPerByte: 0, SecPerMsg: 0}
	if got := ModeledCriticalPath(per, m); got != 150 {
		t.Errorf("critical path = %v, want 150", got)
	}
	if DefaultCostModel().IntervalTime(per[0][0]) <= 0 {
		t.Error("default cost model should price a nonempty interval")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{SentMsgs: 1, SentBytes: 10, RecvMsgs: 1, Barriers: 2,
		PerHandler: []HandlerStats{{SentMsgs: 1}}}
	b := Stats{SentMsgs: 2, SentBytes: 20, RecvMsgs: 2, Barriers: 3,
		PerHandler: []HandlerStats{{SentMsgs: 2}, {RecvMsgs: 5}}}
	a.Add(b)
	if a.SentMsgs != 3 || a.SentBytes != 30 || a.Barriers != 3 {
		t.Errorf("Add result: %+v", a)
	}
	if len(a.PerHandler) != 2 || a.PerHandler[0].SentMsgs != 3 || a.PerHandler[1].RecvMsgs != 5 {
		t.Errorf("per-handler add: %+v", a.PerHandler)
	}
}

// ---- TCP transport -------------------------------------------------

// freeAddrs reserves n distinct localhost ports. There is a tiny reuse
// race between Close and the ranks re-listening, acceptable in tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// runTCPWorld runs fn as an SPMD program over a TCP mesh, one rank per
// goroutine, each with an isolated Comm connected only by sockets.
func runTCPWorld(t *testing.T, n int, fn func(c *Comm) error) []*Comm {
	t.Helper()
	addrs := freeAddrs(t, n)
	comms := make([]*Comm, n)
	errCh := make(chan error, n)
	ready := make(chan int, n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			c, err := NewTCPComm(rank, addrs)
			if err != nil {
				errCh <- fmt.Errorf("rank %d: %w", rank, err)
				ready <- rank
				return
			}
			comms[rank] = c
			ready <- rank
			defer c.Close()
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("rank %d panic: %v", rank, r)
					return
				}
			}()
			errCh <- fn(c)
		}(rank)
	}
	for i := 0; i < n; i++ {
		<-ready
	}
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	return comms
}

func TestTCPPingAndBarrier(t *testing.T) {
	const n = 3
	var processed [n]int64
	comms := runTCPWorld(t, n, func(c *Comm) error {
		h := c.Register("ping", func(c *Comm, from int, payload []byte) {
			atomic.AddInt64(&processed[c.Rank()], 1)
		})
		for dest := 0; dest < n; dest++ {
			for i := 0; i < 50; i++ {
				c.Async(dest, h, []byte{1, 2, 3})
			}
		}
		c.Barrier()
		if got := c.AllReduceSum(1); got != n {
			return fmt.Errorf("allreduce over tcp = %d", got)
		}
		return nil
	})
	for r := 0; r < n; r++ {
		if processed[r] != n*50 {
			t.Errorf("rank %d processed %d, want %d", r, processed[r], n*50)
		}
	}
	for _, c := range comms {
		if c == nil {
			t.Fatal("missing comm")
		}
	}
}

func TestTCPNestedCascade(t *testing.T) {
	const n = 3
	var finals int64
	runTCPWorld(t, n, func(c *Comm) error {
		var h2 HandlerID
		h2 = c.Register("final", func(c *Comm, from int, payload []byte) {
			atomic.AddInt64(&finals, 1)
		})
		h1 := c.Register("relay", func(c *Comm, from int, payload []byte) {
			c.Async((c.Rank()+1)%n, h2, payload)
		})
		for i := 0; i < 30; i++ {
			c.Async((c.Rank()+1)%n, h1, []byte{byte(i)})
		}
		c.Barrier()
		return nil
	})
	if finals != n*30 {
		t.Errorf("finals = %d, want %d", finals, n*30)
	}
}

// TestTCPMatchesLocal runs the same deterministic program on both
// transports and compares the aggregate message counters.
func TestTCPMatchesLocal(t *testing.T) {
	const n = 3
	program := func(c *Comm) error {
		h := c.Register("h", func(c *Comm, from int, payload []byte) {})
		for dest := 0; dest < n; dest++ {
			for i := 0; i < 25; i++ {
				c.Async(dest, h, make([]byte, 8))
			}
		}
		c.Barrier()
		return nil
	}

	local := NewLocalWorld(n)
	if err := local.Run(program); err != nil {
		t.Fatal(err)
	}
	localStats := local.AggregateStats()

	comms := runTCPWorld(t, n, program)
	var tcpStats Stats
	for _, c := range comms {
		tcpStats.Add(c.Stats())
	}
	if localStats.SentMsgs != tcpStats.SentMsgs ||
		localStats.SentBytes != tcpStats.SentBytes ||
		localStats.RecvMsgs != tcpStats.RecvMsgs {
		t.Errorf("local %+v vs tcp %+v", localStats, tcpStats)
	}
}

func TestAccessors(t *testing.T) {
	w := NewLocalWorld(3)
	if w.NRanks() != 3 {
		t.Errorf("world NRanks = %d", w.NRanks())
	}
	err := w.Run(func(c *Comm) error {
		if c.NRanks() != 3 {
			return fmt.Errorf("comm NRanks = %d", c.NRanks())
		}
		c.AddWork(5)
		if c.Work() != 5 {
			return fmt.Errorf("Work = %v", c.Work())
		}
		if err := c.Close(); err != nil {
			return err // local transport Close is a no-op
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorUnwrap(t *testing.T) {
	inner := errors.New("inner")
	re := &RankError{Rank: 2, Err: inner}
	if re.Error() == "" || !errors.Is(re, inner) {
		t.Errorf("RankError: %v", re)
	}
}

func TestPeakMailboxStats(t *testing.T) {
	w := NewLocalWorld(2)
	err := w.Run(func(c *Comm) error {
		h := c.Register("h", func(c *Comm, from int, payload []byte) {})
		if c.Rank() == 0 {
			for i := 0; i < 500; i++ {
				c.Async(1, h, make([]byte, 100))
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Comm(1).Stats()
	if st.PeakMailboxDepth < 1 || st.PeakMailboxBytes < 100 {
		t.Errorf("peak mailbox stats not collected: depth=%d bytes=%d",
			st.PeakMailboxDepth, st.PeakMailboxBytes)
	}
	agg := w.AggregateStats()
	if agg.PeakMailboxDepth < st.PeakMailboxDepth {
		t.Error("aggregate peak should take the max")
	}
}

func TestSetFlushThresholdClamps(t *testing.T) {
	w := NewLocalWorld(1)
	err := w.Run(func(c *Comm) error {
		c.SetFlushThreshold(-5) // clamped to 1
		h := c.Register("h", func(c *Comm, from int, payload []byte) {})
		c.Async(0, h, nil)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHandlerNameFallback(t *testing.T) {
	w := NewLocalWorld(1)
	if got := w.Comm(0).HandlerName(HandlerID(200)); got != "handler-200" {
		t.Errorf("fallback name = %q", got)
	}
}

func TestTCPCommValidation(t *testing.T) {
	if _, err := NewTCPComm(5, []string{"127.0.0.1:1", "127.0.0.1:2"}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := NewTCPComm(-1, []string{"127.0.0.1:1"}); err == nil {
		t.Error("negative rank accepted")
	}
	// Unbindable address must fail fast.
	if _, err := NewTCPComm(0, []string{"256.0.0.1:99999"}); err == nil {
		t.Error("bad listen address accepted")
	}
}
