package dnnd

import (
	"math/rand"
	"testing"

	"dnnd/internal/brute"
	"dnnd/internal/knng"
	"dnnd/internal/metric"
)

// TestRefreshKeepsIDsStable: Refresh stitches appended points in and
// repairs around tombstones without compacting IDs — dead vertices
// keep prior lists, live lists never contain dead IDs.
func TestRefreshKeepsIDsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, extra, dim = 400, 40, 8
	data := make([][]float32, n+extra)
	for i := range data {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32() * 10
		}
		data[i] = v
	}
	opt := BuildOptions{K: 8, Metric: metric.SquaredL2, Ranks: 2, Seed: 1}
	base, err := Build(data[:n], opt)
	if err != nil {
		t.Fatal(err)
	}
	tombs := NewTombstones(n + extra)
	for i := 0; i < 20; i++ {
		tombs.Kill(ID(i * 7))
	}
	res, err := Refresh(data, base.Graph, tombs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumVertices() != n+extra {
		t.Fatalf("refreshed graph covers %d vertices, want %d", res.Graph.NumVertices(), n+extra)
	}
	for v := 0; v < res.Graph.NumVertices(); v++ {
		if tombs.Dead(ID(v)) {
			continue
		}
		if len(res.Graph.Neighbors[v]) == 0 {
			t.Fatalf("live vertex %d has no neighbors", v)
		}
		for _, e := range res.Graph.Neighbors[v] {
			if tombs.Dead(e.ID) {
				t.Fatalf("live vertex %d kept dead neighbor %d", v, e.ID)
			}
		}
	}
	if res.DistEvals >= base.DistEvals {
		t.Errorf("refresh evals %d not below base build's %d", res.DistEvals, base.DistEvals)
	}
}

// TestRefreshRecallAtLeastCold is the mutable-index acceptance gate:
// ingesting a +10% delta and refreshing the prior graph must (a) search
// at least as well as a cold rebuild over the combined dataset and
// (b) cost at most 0.3x the cold rebuild's distance evaluations —
// otherwise the online path would be pointless and a full rebuild
// always preferable.
func TestRefreshRecallAtLeastCold(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const n, extra, dim, k, nq = 1000, 100, 12, 10, 80
	all := make([][]float32, n+extra)
	for i := range all {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32() * 10
		}
		all[i] = v
	}
	queries := make([][]float32, nq)
	for i := range queries {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32() * 10
		}
		queries[i] = v
	}
	opt := BuildOptions{K: k, Metric: metric.SquaredL2, Ranks: 1, Seed: 5}

	cold, err := Build(all, opt)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Build(all[:n], opt)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := Refresh(all, base.Graph, NewTombstones(n+extra), opt)
	if err != nil {
		t.Fatal(err)
	}

	dist, err := metric.ForFloat32(metric.SquaredL2)
	if err != nil {
		t.Fatal(err)
	}
	truth := brute.TruthIDs(brute.QueryKNN(all, queries, k, dist, 0))
	recall := func(g *Graph) float64 {
		ix, err := NewIndex(g, all, metric.SquaredL2, k)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := ix.SearchBatch(queries, k, 0.3, 2)
		hits := 0
		for qi, want := range truth {
			got := make(map[knng.ID]bool, len(res[qi]))
			for _, nb := range res[qi] {
				got[nb.ID] = true
			}
			for _, id := range want {
				if got[id] {
					hits++
				}
			}
		}
		return float64(hits) / float64(nq*k)
	}

	coldR, incrR := recall(cold.Graph), recall(incr.Graph)
	t.Logf("recall@%d: cold=%.4f incremental=%.4f; evals: cold=%d incremental=%d (%.2fx)",
		k, coldR, incrR, cold.DistEvals, incr.DistEvals,
		float64(incr.DistEvals)/float64(cold.DistEvals))
	if coldR < 0.80 {
		t.Fatalf("cold-rebuild recall %.4f implausibly low; test setup broken", coldR)
	}
	if incrR < coldR {
		t.Errorf("incremental recall %.4f below cold rebuild's %.4f", incrR, coldR)
	}
	if got, cap := incr.DistEvals, cold.DistEvals*3/10; got > cap {
		t.Errorf("+10%% delta refresh cost %d evals, above the 0.3x cold-rebuild cap %d", got, cap)
	}
}
