#!/usr/bin/env bash
# Benchmark-regression snapshot: runs the allocation/latency anchor
# benches with -benchmem and records them as BENCH_PR<N>.json at the
# repo root (see EXPERIMENTS.md, "Benchmark regression workflow").
#
# Usage: scripts/bench.sh <PR-number> [extra go-test bench args]
set -euo pipefail
cd "$(dirname "$0")/.."

pr="${1:?usage: scripts/bench.sh <PR-number>}"
shift || true
out="BENCH_PR${pr}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

{
  # End-to-end construction: the hot path vs the Conservative legacy
  # path (identical output graphs; the gap is pure optimization).
  go test -run '^$' -bench '^BenchmarkConstruction$' -benchmem -benchtime 3x "$@" .
  # Intra-rank worker-pool sweep (identical graphs at every width; see
  # the offload-frac / modeled-speedup metrics).
  go test -run '^$' -bench '^BenchmarkConstructionWorkers$' -benchmem -benchtime 3x "$@" .
  # Observability tax: the same build with the tracer off (must track
  # BenchmarkConstruction) and on (the cost of a full span timeline).
  go test -run '^$' -bench '^BenchmarkConstructionTracer$' -benchmem -benchtime 3x "$@" .
  # Quantized-filter anchors: gist (960-dim float32, where the uint8
  # screen pays) vs bigann (native uint8, the honest negative).
  go test -run '^$' -bench '^BenchmarkConstructionQuant$' -benchmem -benchtime 3x "$@" .
  # Distance kernels.
  go test -run '^$' -bench . -benchmem "$@" ./internal/metric/
  # Comm substrate (aggregation, delivery, barrier).
  go test -run '^$' -bench . -benchmem "$@" ./internal/ygm/
  # Online serving: loopback round-trip floor, closed-loop throughput,
  # and the lane-scaling axis (qps at 1/2/4 dispatch lanes over
  # pipelined connections; server and loadgen in-process — see
  # results/serve.md).
  go test -run '^$' -bench '^BenchmarkServe' -benchmem "$@" ./internal/serve/
  # Cluster router: the per-request routing tax (direct shard vs
  # 1-shard router passthrough, plus the same hop with distributed
  # tracing fully sampled) and the merged closed-loop throughput of a
  # 3-shard cluster through one router (see results/router.md).
  go test -run '^$' -bench '^BenchmarkRouter' -benchmem "$@" ./internal/router/
  # Mutable-index online path: wire-ingest a +10% delta, force the
  # incremental refinement, and swap the snapshot (vecs/sec plus the
  # refine-evals axis results/incr.md compares against cold rebuilds).
  go test -run '^$' -bench '^BenchmarkIngestRefine$' -benchmem -benchtime 3x "$@" ./internal/serve/
} | tee "$tmp"

go run ./cmd/benchjson < "$tmp" > "$out"
echo "wrote $out"
