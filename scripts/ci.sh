#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): formatting, vet, build, full tests,
# and a race pass over the concurrency-heavy packages. Must stay green
# on every PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
  echo "gofmt needed:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet"
go vet ./...
# The serving binaries are vetted above with everything else; this
# explicit pass guarantees they stay vet-clean even if the package
# list above is ever narrowed.
go vet ./cmd/dnnd-serve/ ./cmd/dnnd-loadgen/

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (comm + core)"
go test -race ./internal/ygm/ ./internal/core/ ./internal/dquery/

echo "== go test -race (online serving: server + loadgen in-process)"
# The serve e2e suite runs the whole subsystem — admission, batching,
# drain, loadgen — in-process on loopback; the race detector watches
# the scheduler, the connection writers, and the metrics.
go test -race -count=1 ./internal/serve/ ./internal/bootstrap/

echo "== go test -race (core + dquery with worker pools active)"
# Re-run the suites with every construction forced onto a 3-wide
# intra-rank worker pool; results are worker-count-independent, so the
# same assertions must hold while the race detector watches the
# stage/claim/apply machinery.
DNND_TEST_WORKERS=3 go test -race -count=1 ./internal/core/ ./internal/dquery/

echo "== fuzz smoke (message codecs + bulk LE codec)"
# Short native-fuzz bursts over the wire-facing decoders: corpus seeds
# plus a few seconds of mutation each. Full fuzzing is manual; this
# catches decoder panics on malformed bytes before they land.
go test -run='^$' -fuzz='^FuzzCoreMessages$' -fuzztime=2s ./internal/msg/
go test -run='^$' -fuzz='^FuzzDQueryMessages$' -fuzztime=2s ./internal/msg/
go test -run='^$' -fuzz='^FuzzServeMessages$' -fuzztime=2s ./internal/msg/
go test -run='^$' -fuzz='^FuzzBulkCodec$' -fuzztime=2s ./internal/wire/

echo "CI OK"
