#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): formatting, vet, build, full tests,
# and a race pass over the concurrency-heavy packages. Must stay green
# on every PR.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
  echo "gofmt needed:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet"
go vet ./...
# The serving binaries are vetted above with everything else; this
# explicit pass guarantees they stay vet-clean even if the package
# list above is ever narrowed.
go vet ./cmd/dnnd-serve/ ./cmd/dnnd-loadgen/

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (comm + core)"
go test -race ./internal/ygm/ ./internal/core/ ./internal/dquery/

echo "== go test -race (online serving: server + loadgen in-process)"
# The serve e2e suite runs the whole subsystem — admission, batching,
# drain, loadgen — in-process on loopback; the race detector watches
# the scheduler, the connection writers, and the metrics.
go test -race -count=1 ./internal/serve/ ./internal/bootstrap/

echo "== go test -race (cluster router: scatter/gather, failover, e2e smoke)"
# The router suite includes the cluster e2e tests — a 2-shard ×
# 2-replica cluster of real serve servers behind a real router, with
# one replica hard-killed under open-loop load (zero client-visible
# failures) and a 3-shard exact-merge check against single-store
# ground truth — all raced: probers, failover demotions, and the
# scatter/gather hot path run concurrently by construction.
go test -race -count=1 ./internal/router/

echo "== go test -race (observability: tracks, registry, histograms)"
# Concurrent writers record onto lock-free tracks while an exporter
# snapshots them; histograms merge under concurrent Observe. The obs
# suite exercises all of it under the race detector.
go test -race -count=1 ./internal/obs/

echo "== go test -race (core + dquery with worker pools active)"
# Re-run the suites with every construction forced onto a 3-wide
# intra-rank worker pool; results are worker-count-independent, so the
# same assertions must hold while the race detector watches the
# stage/claim/apply machinery.
DNND_TEST_WORKERS=3 go test -race -count=1 ./internal/core/ ./internal/dquery/

echo "== go test -race (sharded serve dispatch at a forced worker width)"
# The lane/worker equivalence sweep re-runs with an extra forced pool
# width, so the sharded dispatch, pooled contexts, and zero-copy reply
# writers are raced at a geometry the default suite doesn't cover.
DNND_TEST_WORKERS=3 go test -race -count=1 -run 'TestLaneWorkerEquivalence' ./internal/serve/

echo "== fuzz smoke (message codecs + bulk LE codec)"
# Short native-fuzz bursts over the wire-facing decoders: corpus seeds
# plus a few seconds of mutation each. Full fuzzing is manual; this
# catches decoder panics on malformed bytes before they land.
go test -run='^$' -fuzz='^FuzzCoreMessages$' -fuzztime=2s ./internal/msg/
go test -run='^$' -fuzz='^FuzzDQueryMessages$' -fuzztime=2s ./internal/msg/
go test -run='^$' -fuzz='^FuzzServeMessages$' -fuzztime=2s ./internal/msg/
go test -run='^$' -fuzz='^FuzzRouterMessages$' -fuzztime=2s ./internal/msg/
go test -run='^$' -fuzz='^FuzzBulkCodec$' -fuzztime=2s ./internal/wire/
go test -run='^$' -fuzz='^FuzzTraceDecode$' -fuzztime=2s ./internal/obs/
go test -run='^$' -fuzz='^FuzzQuantRoundTrip$' -fuzztime=2s ./internal/metric/quant/

echo "== trace smoke (3-rank traced build round-trips through the decoder)"
# A real traced construction must emit Perfetto-loadable JSON: decode,
# validate nesting, and find every construction phase plus the runtime
# spans — the executable form of the PR-5 acceptance criterion.
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/dnnd-construct -preset deep -n 1200 -k 8 -ranks 3 \
  -store "$tracedir/store" -trace "$tracedir/trace.json"
go run ./cmd/tracecheck \
  -require nd.init -require nd.sample -require nd.reverse -require nd.check \
  -require nd.round -require ygm.barrier -require ygm.flush \
  "$tracedir/trace.json"

echo "== cluster smoke (real 3-shard multi-process run + tracecheck -merge)"
# Three dnnd-serve processes and a dnnd-router, each tracing into its
# own file, take traced loadgen traffic; tracecheck -merge must join
# the four files into one validated cross-process timeline — the
# executable form of the PR-10 acceptance criterion (the failover half
# runs in-process as TestClusterTraceTimeline, raced above).
bash scripts/cluster_smoke.sh

echo "CI OK"
