#!/usr/bin/env bash
# Cluster observability smoke: a REAL multi-process 3-shard cluster —
# three dnnd-serve processes and one dnnd-router, each writing its own
# -trace file — takes traced load from dnnd-loadgen, then tracecheck
# -merge must join the four per-process files into one validated
# Perfetto timeline with cross-process parentage proven. This is the
# out-of-process half of the trace-assembly acceptance; the in-process
# half (with a replica hard-killed mid-load and the failover retry
# span asserted) is TestClusterTraceTimeline in internal/router.
set -euo pipefail
cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

echo "== build binaries"
go build -o "$dir/bin/" ./cmd/dnnd-construct ./cmd/dnnd-optimize \
  ./cmd/dnnd-serve ./cmd/dnnd-router ./cmd/dnnd-loadgen ./cmd/tracecheck

echo "== build + split a store (3 shards)"
"$dir/bin/dnnd-construct" -preset deep -n 900 -k 8 -store "$dir/store"
"$dir/bin/dnnd-optimize" -store "$dir/store" -split 3 -split-out "$dir/cluster"

# wait_port blocks until something listens on 127.0.0.1:$1.
wait_port() {
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
      exec 3>&- 3<&-
      return 0
    fi
    sleep 0.1
  done
  echo "port $1 never came up" >&2
  return 1
}

base=$(( 17000 + RANDOM % 20000 ))
echo "== launch 3 traced shard servers + 1 traced router (ports from $base)"
shard_addrs=()
for s in 0 1 2; do
  port=$(( base + s ))
  "$dir/bin/dnnd-serve" -store "$dir/cluster/shard$s" \
    -addr "127.0.0.1:$port" -trace "$dir/shard$s.trace.json" \
    >"$dir/shard$s.log" 2>&1 &
  pids+=($!)
  shard_addrs+=("127.0.0.1:$port")
done
for s in 0 1 2; do wait_port $(( base + s )); done

rport=$(( base + 3 ))
"$dir/bin/dnnd-router" -manifest "$dir/cluster/manifest" \
  -shards "${shard_addrs[0]};${shard_addrs[1]};${shard_addrs[2]}" \
  -addr "127.0.0.1:$rport" -trace "$dir/router.trace.json" -probe 200ms \
  >"$dir/router.log" 2>&1 &
pids+=($!)
wait_port $rport

echo "== traced load through the router"
"$dir/bin/dnnd-loadgen" -addr "127.0.0.1:$rport" -n 500 -c 4 \
  -trace-sample 1 -report-errors -out "$dir/load.json"
grep -q '"errors": 0' "$dir/load.json"
# Full sampling means the report must name its slowest traces.
grep -q '"slowest_traces"' "$dir/load.json"

echo "== drain all processes (flushes the per-process trace files)"
kill -TERM "${pids[@]}"
wait "${pids[@]}" 2>/dev/null || true
pids=()

echo "== merge + validate the cross-process timeline"
"$dir/bin/tracecheck" -merge -o "$dir/merged.json" -cross-min 1 \
  -require router.query -require router.scatter -require router.attempt \
  -require router.merge -require serve.query \
  "router=$dir/router.trace.json" \
  "shard0=$dir/shard0.trace.json" \
  "shard1=$dir/shard1.trace.json" \
  "shard2=$dir/shard2.trace.json"

echo "CLUSTER SMOKE OK"
