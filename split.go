package dnnd

import (
	"fmt"
	"path/filepath"

	"dnnd/internal/shard"
)

// ShardDir returns the datastore directory of shard i under a split
// output directory (the layout Split writes and dnnd-router expects).
func ShardDir(outDir string, i int) string {
	return filepath.Join(outDir, fmt.Sprintf("shard%d", i))
}

// ManifestDir returns the shard-manifest datastore directory under a
// split output directory.
func ManifestDir(outDir string) string {
	return filepath.Join(outDir, "manifest")
}

// Split partitions a persisted store into n shard stores plus a shard
// manifest, the offline half of the cluster workflow: each shard gets
// every n-th point (round-robin, so shard sizes differ by at most
// one), its own NN-Descent graph built and refined over just its
// slice, and its own datastore at ShardDir(outDir, i); the manifest at
// ManifestDir(outDir) records the local→global ID map a router needs
// to merge shard answers back into global IDs. opt.K and opt.Metric
// default to the source store's own values; the other build knobs work
// exactly as in Build.
//
// Every output store goes through the same metall temp+rename commit
// as any other dnnd store, so a crash mid-split never leaves a
// half-written shard that loads.
func Split[T Scalar](dir, outDir string, n int, opt BuildOptions) (*shard.Manifest, error) {
	if n < 1 {
		return nil, fmt.Errorf("dnnd: split needs at least 1 shard, got %d", n)
	}
	ix, _, err := LoadWithMeta[T](dir)
	if err != nil {
		return nil, err
	}
	if opt.K == 0 {
		opt.K = ix.k
	}
	if opt.Metric == "" {
		opt.Metric = ix.kind
	}
	data := ix.data
	if len(data) < n {
		return nil, fmt.Errorf("dnnd: cannot split %d points into %d shards", len(data), n)
	}

	man := &shard.Manifest{
		Elem:    elemName[T](),
		Metric:  string(opt.Metric),
		K:       uint32(opt.K),
		Dim:     uint32(len(data[0])),
		N:       uint32(len(data)),
		Refined: !opt.SkipRefine,
	}
	for s := 0; s < n; s++ {
		sub := make([][]T, 0, (len(data)+n-1-s)/n)
		globals := make([]ID, 0, cap(sub))
		for g := s; g < len(data); g += n {
			sub = append(sub, data[g])
			globals = append(globals, ID(g))
		}
		if len(sub) <= opt.K {
			return nil, fmt.Errorf("dnnd: shard %d would hold %d points, need more than k=%d",
				s, len(sub), opt.K)
		}
		res, err := Build(sub, opt)
		if err != nil {
			return nil, fmt.Errorf("dnnd: building shard %d: %w", s, err)
		}
		shardIx, err := NewIndex(res.Graph, sub, opt.Metric, opt.K)
		if err != nil {
			return nil, err
		}
		if err := Save(ShardDir(outDir, s), shardIx, !opt.SkipRefine); err != nil {
			return nil, fmt.Errorf("dnnd: saving shard %d: %w", s, err)
		}
		man.Shards = append(man.Shards, shard.ShardInfo{
			Count:   uint32(len(sub)),
			Globals: globals,
		})
	}
	if err := shard.SaveManifest(ManifestDir(outDir), man); err != nil {
		return nil, err
	}
	return man, nil
}

// SplitStore is the element-type-dispatching form of Split for
// command-line tools that only know the store directory.
func SplitStore(dir, outDir string, n int, opt BuildOptions) (*shard.Manifest, error) {
	elem, err := StoreElem(dir)
	if err != nil {
		return nil, err
	}
	switch elem {
	case "float32":
		return Split[float32](dir, outDir, n, opt)
	case "uint8":
		return Split[uint8](dir, outDir, n, opt)
	case "uint32":
		return Split[uint32](dir, outDir, n, opt)
	default:
		return nil, fmt.Errorf("dnnd: unknown store element type %q", elem)
	}
}
