package dnnd

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"dnnd/internal/brute"
	"dnnd/internal/metall"
	"dnnd/internal/metric"
	"dnnd/internal/router"
)

// splitRoundTrip pins the shard-manifest contract: splitting a store
// and composing each shard's local→global map over its loaded dataset
// reconstructs the source dataset exactly — the identity every router
// merge silently relies on.
func splitRoundTrip[T Scalar](t *testing.T, data [][]T, kind MetricKind, nShards int) {
	t.Helper()
	const k = 4
	dist, err := metricFor[T](kind)
	if err != nil {
		t.Fatal(err)
	}
	g := brute.KNNGraph(data, k, dist, 0)
	ix, err := NewIndex(g, data, kind, k)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "store")
	if err := Save(src, ix, false); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "cluster")
	man, err := SplitStore(src, out, nShards, BuildOptions{Seed: 1, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if man.Elem != elemName[T]() || man.Metric != string(kind) ||
		int(man.K) != k || int(man.N) != len(data) || len(man.Shards) != nShards {
		t.Fatalf("manifest shape: %+v", man)
	}

	// The persisted manifest must reload to the same tables.
	loaded, err := router.LoadManifest(ManifestDir(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Shards) != len(man.Shards) {
		t.Fatalf("reloaded manifest has %d shards, want %d", len(loaded.Shards), len(man.Shards))
	}

	// Load every shard store and compose the remap: each local row must
	// be the source row its global ID names, and together the shards
	// must cover every global ID exactly once.
	seen := make([]bool, len(data))
	for s := 0; s < nShards; s++ {
		shardIx, refined, err := LoadWithMeta[T](ShardDir(out, s))
		if err != nil {
			t.Fatalf("loading shard %d: %v", s, err)
		}
		if !refined {
			t.Fatalf("shard %d not refined", s)
		}
		sh := loaded.Shards[s]
		if shardIx.Len() != int(sh.Count) {
			t.Fatalf("shard %d holds %d points, manifest says %d", s, shardIx.Len(), sh.Count)
		}
		if shardIx.K() != k || shardIx.Metric() != kind {
			t.Fatalf("shard %d meta: k=%d metric=%q", s, shardIx.K(), shardIx.Metric())
		}
		for i, row := range shardIx.Data() {
			glob := sh.Globals[i]
			if seen[glob] {
				t.Fatalf("global ID %d served by two shard slots", glob)
			}
			seen[glob] = true
			want := data[glob]
			if len(row) != len(want) {
				t.Fatalf("shard %d local %d: %d elems, want %d", s, i, len(row), len(want))
			}
			for j := range row {
				if row[j] != want[j] {
					t.Fatalf("shard %d local %d (global %d) elem %d: %v, want %v",
						s, i, glob, j, row[j], want[j])
				}
			}
		}
	}
	for gID, ok := range seen {
		if !ok {
			t.Fatalf("global ID %d is on no shard", gID)
		}
	}
}

func TestSplitRoundTripAllElems(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, dim = 42, 6

	f32 := make([][]float32, n)
	for i := range f32 {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()
		}
		f32[i] = v
	}
	u8 := make([][]uint8, n)
	for i := range u8 {
		v := make([]uint8, dim)
		for j := range v {
			v[j] = uint8(rng.Intn(256))
		}
		u8[i] = v
	}
	// uint32 rows as fixed-width sorted distinct sets (Jaccard data):
	// the router protocol assumes one dimensionality across the store.
	u32 := make([][]uint32, n)
	for i := range u32 {
		v := make([]uint32, 0, dim)
		x := uint32(rng.Intn(3))
		for len(v) < dim {
			v = append(v, x)
			x += 1 + uint32(rng.Intn(4))
		}
		u32[i] = v
	}

	t.Run("float32", func(t *testing.T) { splitRoundTrip(t, f32, metric.SquaredL2, 3) })
	t.Run("uint8", func(t *testing.T) { splitRoundTrip(t, u8, metric.L2, 3) })
	t.Run("uint32", func(t *testing.T) { splitRoundTrip(t, u32, metric.Jaccard, 2) })
}

func TestSplitRejectsBadShapes(t *testing.T) {
	data := [][]float32{{0, 1}, {1, 0}, {1, 1}, {0, 0}, {2, 2}, {3, 3}}
	dist, _ := metricFor[float32](metric.SquaredL2)
	g := brute.KNNGraph(data, 2, dist, 0)
	ix, err := NewIndex(g, data, metric.SquaredL2, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "store")
	if err := Save(src, ix, false); err != nil {
		t.Fatal(err)
	}
	if _, err := Split[float32](src, t.TempDir(), 0, BuildOptions{}); err == nil {
		t.Fatal("0-shard split accepted")
	}
	// 3 shards of 2 points each cannot support k=2 graphs.
	if _, err := Split[float32](src, t.TempDir(), 3, BuildOptions{}); err == nil ||
		!strings.Contains(err.Error(), "need more than k") {
		t.Fatalf("tiny-shard split: %v", err)
	}
	// Wrong element instantiation fails like any other load.
	if _, err := Split[uint8](src, t.TempDir(), 2, BuildOptions{}); err == nil {
		t.Fatal("wrong-elem split accepted")
	}
}

// TestSplitCorruptManifestRejected: a damaged manifest must refuse to
// load — a router silently serving through a broken ID map would
// return wrong neighbors with a straight face.
func TestSplitCorruptManifestRejected(t *testing.T) {
	data := make([][]float32, 12)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = []float32{rng.Float32(), rng.Float32()}
	}
	dist, _ := metricFor[float32](metric.SquaredL2)
	g := brute.KNNGraph(data, 3, dist, 0)
	ix, err := NewIndex(g, data, metric.SquaredL2, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "store")
	if err := Save(src, ix, false); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "cluster")
	if _, err := Split[float32](src, out, 2, BuildOptions{Seed: 1, Ranks: 2}); err != nil {
		t.Fatal(err)
	}

	mdir := ManifestDir(out)
	mgr, err := metall.Open(mdir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := mgr.Get(router.ManifestObject)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff // flip bits inside the last Globals table
	if err := mgr.Put(router.ManifestObject, raw); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := router.LoadManifest(mdir); err == nil {
		t.Fatal("corrupted manifest loaded")
	}
}
