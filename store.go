package dnnd

import (
	"encoding/json"
	"fmt"

	"dnnd/internal/knng"
	"dnnd/internal/metall"
	"dnnd/internal/wire"
)

// Datastore object names.
const (
	objMeta    = "meta"
	objGraph   = "graph"
	objDataset = "dataset"
)

// storeVersion is the on-disk format version written by Save and
// required by Load.
const storeVersion = 1

// MismatchError reports a typed incompatibility between a persisted
// datastore and what the caller asked for: an unknown format version,
// or an element type different from the requested instantiation.
// Callers distinguish the two via Field ("version" or "elem") and can
// recover — e.g. the serve and query commands re-dispatch on
// StoreElem after an elem mismatch.
type MismatchError struct {
	Dir   string // datastore directory
	Field string // "version" | "elem"
	Got   string // what the store holds
	Want  string // what this build understands / the caller requested
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("dnnd: store %s: %s mismatch: have %s, want %s",
		e.Dir, e.Field, e.Got, e.Want)
}

// storeMeta describes a persisted index (JSON inside the datastore).
type storeMeta struct {
	Version int        `json:"version"`
	K       int        `json:"k"`
	Metric  MetricKind `json:"metric"`
	Elem    string     `json:"elem"`
	N       int        `json:"n"`
	Refined bool       `json:"refined"` // Section 4.5 optimization applied
}

func elemName[T Scalar]() string {
	var z T
	switch any(z).(type) {
	case float32:
		return "float32"
	case uint8:
		return "uint8"
	default:
		return "uint32"
	}
}

// Save persists an index (graph + dataset + metadata) into a
// Metall-style datastore directory, creating or updating it. The
// paper's construct executable does exactly this so the optimize and
// query executables can reattach later.
func Save[T Scalar](dir string, ix *Index[T], refined bool) error {
	mgr, err := metall.OpenOrCreate(dir)
	if err != nil {
		return err
	}
	meta := storeMeta{
		Version: storeVersion,
		K:       ix.k,
		Metric:  ix.kind,
		Elem:    elemName[T](),
		N:       len(ix.data),
		Refined: refined,
	}
	rawMeta, err := json.Marshal(&meta)
	if err != nil {
		return err
	}
	if err := mgr.Put(objMeta, rawMeta); err != nil {
		return err
	}
	if err := mgr.Put(objGraph, ix.graph.Marshal()); err != nil {
		return err
	}
	if err := mgr.Put(objDataset, marshalDataset(ix.data)); err != nil {
		return err
	}
	return mgr.Close()
}

// Load reattaches to a datastore written by Save. The element type T
// must match the stored one.
func Load[T Scalar](dir string) (*Index[T], error) {
	ix, _, err := LoadWithMeta[T](dir)
	return ix, err
}

// LoadWithMeta is Load plus the stored metadata (e.g. the Refined
// flag).
func LoadWithMeta[T Scalar](dir string) (*Index[T], bool, error) {
	mgr, err := metall.Open(dir)
	if err != nil {
		return nil, false, err
	}
	defer mgr.Close()

	rawMeta, err := mgr.Get(objMeta)
	if err != nil {
		return nil, false, err
	}
	var meta storeMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		return nil, false, fmt.Errorf("dnnd: bad store metadata: %w", err)
	}
	if meta.Version != storeVersion {
		return nil, false, &MismatchError{
			Dir: dir, Field: "version",
			Got: fmt.Sprintf("%d", meta.Version), Want: fmt.Sprintf("%d", storeVersion),
		}
	}
	if meta.Elem != elemName[T]() {
		return nil, false, &MismatchError{
			Dir: dir, Field: "elem", Got: meta.Elem, Want: elemName[T](),
		}
	}

	rawGraph, err := mgr.Get(objGraph)
	if err != nil {
		return nil, false, err
	}
	g, err := knng.Unmarshal(rawGraph)
	if err != nil {
		return nil, false, err
	}
	rawData, err := mgr.Get(objDataset)
	if err != nil {
		return nil, false, err
	}
	data, err := unmarshalDataset[T](rawData)
	if err != nil {
		return nil, false, err
	}
	if len(data) != meta.N || g.NumVertices() != meta.N {
		return nil, false, fmt.Errorf("dnnd: store inconsistent: meta N=%d, dataset %d, graph %d",
			meta.N, len(data), g.NumVertices())
	}
	ix, err := NewIndex(g, data, meta.Metric, meta.K)
	if err != nil {
		return nil, false, err
	}
	return ix, meta.Refined, nil
}

// StoreElem reports the element type ("float32", "uint8", "uint32")
// of a persisted index, so command-line tools can dispatch to the
// right Load instantiation.
func StoreElem(dir string) (string, error) {
	mgr, err := metall.Open(dir)
	if err != nil {
		return "", err
	}
	defer mgr.Close()
	rawMeta, err := mgr.Get(objMeta)
	if err != nil {
		return "", err
	}
	var meta storeMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		return "", fmt.Errorf("dnnd: bad store metadata: %w", err)
	}
	return meta.Elem, nil
}

// Refine applies the Section 4.5 graph optimization to a stored index
// in place: merge reverse edges and prune degrees to k*m. It mirrors
// the paper's separate graph-optimization executable.
func Refine[T Scalar](dir string, m float64) error {
	ix, refined, err := LoadWithMeta[T](dir)
	if err != nil {
		return err
	}
	if refined {
		return fmt.Errorf("dnnd: store %s is already refined", dir)
	}
	ix.graph.Optimize(ix.k, m)
	return Save(dir, ix, true)
}

const datasetMagic uint32 = 0x54534456 // "VDST"

func marshalDataset[T Scalar](data [][]T) []byte {
	size := 8
	for _, v := range data {
		size += wire.VectorBytes[T](len(v))
	}
	w := wire.NewWriter(size)
	w.Uint32(datasetMagic)
	w.Uint32(uint32(len(data)))
	for _, v := range data {
		putVec(w, v)
	}
	return w.Bytes()
}

func unmarshalDataset[T Scalar](p []byte) ([][]T, error) {
	r := wire.NewReader(p)
	if r.Uint32() != datasetMagic {
		return nil, fmt.Errorf("dnnd: bad dataset blob")
	}
	n := int(r.Uint32())
	if r.Err() != nil || n > wire.MaxVectorLen {
		return nil, fmt.Errorf("dnnd: bad dataset header")
	}
	data := make([][]T, n)
	for i := range data {
		data[i] = getVec[T](r)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("dnnd: corrupt dataset blob: %w", err)
	}
	return data, nil
}

// putVec/getVec adapt wire's generic vector codec to the root Scalar
// constraint (the constraints are structurally identical).
func putVec[T Scalar](w *wire.Writer, v []T) {
	switch s := any(v).(type) {
	case []float32:
		w.Float32s(s)
	case []uint8:
		w.Uint8s(s)
	case []uint32:
		w.Uint32s(s)
	}
}

func getVec[T Scalar](r *wire.Reader) []T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(r.Float32s()).([]T)
	case uint8:
		return any(r.Uint8s()).([]T)
	default:
		return any(r.Uint32s()).([]T)
	}
}
