package dnnd

import (
	"encoding/json"
	"fmt"

	"dnnd/internal/knng"
	"dnnd/internal/metall"
	"dnnd/internal/wire"
)

// Datastore object names.
const (
	objMeta    = "meta"
	objGraph   = "graph"
	objDataset = "dataset"
	objDelta   = "delta"      // append-only log of vectors not yet refined into the graph
	objTombs   = "tombstones" // knng.TombSet blob over [0, BaseN+DeltaN)
)

// Store format versions. Save still writes the frozen single-snapshot
// v1 layout (meta + graph + dataset), so stores produced by this build
// remain readable by older tools; SaveMutable writes the v2 MVCC
// manifest, which adds a generation counter, the base/delta split, and
// the delta + tombstone objects. Load accepts both.
const (
	storeVersion        = 1
	storeVersionMutable = 2
)

// MismatchError reports a typed incompatibility between a persisted
// datastore and what the caller asked for: an unknown format version,
// or an element type different from the requested instantiation.
// Callers distinguish the two via Field ("version" or "elem") and can
// recover — e.g. the serve and query commands re-dispatch on
// StoreElem after an elem mismatch.
type MismatchError struct {
	Dir   string // datastore directory
	Field string // "version" | "elem"
	Got   string // what the store holds
	Want  string // what this build understands / the caller requested
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("dnnd: store %s: %s mismatch: have %s, want %s",
		e.Dir, e.Field, e.Got, e.Want)
}

// storeMeta describes a persisted index (JSON inside the datastore).
// The v2 fields version the snapshot manifest: Gen counts published
// snapshots (every SaveMutable commit bumps it), BaseN is the vertex
// count the graph object covers, DeltaN the pending vectors in the
// delta log, TombN the tombstoned IDs. v1 stores carry none of them
// (BaseN = N, everything else zero).
type storeMeta struct {
	Version int        `json:"version"`
	K       int        `json:"k"`
	Metric  MetricKind `json:"metric"`
	Elem    string     `json:"elem"`
	N       int        `json:"n"`
	Refined bool       `json:"refined"` // Section 4.5 optimization applied

	Gen    int64 `json:"gen,omitempty"`
	BaseN  int   `json:"base_n,omitempty"`
	DeltaN int   `json:"delta_n,omitempty"`
	TombN  int   `json:"tomb_n,omitempty"`
}

func elemName[T Scalar]() string {
	var z T
	switch any(z).(type) {
	case float32:
		return "float32"
	case uint8:
		return "uint8"
	default:
		return "uint32"
	}
}

// Save persists an index (graph + dataset + metadata) into a
// Metall-style datastore directory, creating or updating it. The
// paper's construct executable does exactly this so the optimize and
// query executables can reattach later.
func Save[T Scalar](dir string, ix *Index[T], refined bool) error {
	mgr, err := metall.OpenOrCreate(dir)
	if err != nil {
		return err
	}
	meta := storeMeta{
		Version: storeVersion,
		K:       ix.k,
		Metric:  ix.kind,
		Elem:    elemName[T](),
		N:       len(ix.data),
		Refined: refined,
	}
	rawMeta, err := json.Marshal(&meta)
	if err != nil {
		return err
	}
	if err := mgr.Put(objMeta, rawMeta); err != nil {
		return err
	}
	if err := mgr.Put(objGraph, ix.graph.Marshal()); err != nil {
		return err
	}
	if err := mgr.Put(objDataset, marshalDataset(ix.data)); err != nil {
		return err
	}
	return mgr.Close()
}

// Load reattaches to a datastore written by Save. The element type T
// must match the stored one.
func Load[T Scalar](dir string) (*Index[T], error) {
	ix, _, err := LoadWithMeta[T](dir)
	return ix, err
}

// LoadWithMeta is Load plus the stored metadata (e.g. the Refined
// flag).
func LoadWithMeta[T Scalar](dir string) (*Index[T], bool, error) {
	mgr, err := metall.Open(dir)
	if err != nil {
		return nil, false, err
	}
	defer mgr.Close()

	rawMeta, err := mgr.Get(objMeta)
	if err != nil {
		return nil, false, err
	}
	var meta storeMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		return nil, false, fmt.Errorf("dnnd: bad store metadata: %w", err)
	}
	switch meta.Version {
	case storeVersion:
	case storeVersionMutable:
		// A clean v2 store (no pending mutations) is frozen-equivalent;
		// one with deltas or tombstones must go through LoadMutable, or
		// a frozen reader would resurface deleted points.
		if meta.DeltaN != 0 || meta.TombN != 0 {
			return nil, false, fmt.Errorf(
				"dnnd: store %s has pending mutations (delta %d, tombstones %d); use LoadMutable or compact it first",
				dir, meta.DeltaN, meta.TombN)
		}
	default:
		return nil, false, &MismatchError{
			Dir: dir, Field: "version",
			Got:  fmt.Sprintf("%d", meta.Version),
			Want: fmt.Sprintf("%d|%d", storeVersion, storeVersionMutable),
		}
	}
	if meta.Elem != elemName[T]() {
		return nil, false, &MismatchError{
			Dir: dir, Field: "elem", Got: meta.Elem, Want: elemName[T](),
		}
	}

	rawGraph, err := mgr.Get(objGraph)
	if err != nil {
		return nil, false, err
	}
	g, err := knng.Unmarshal(rawGraph)
	if err != nil {
		return nil, false, err
	}
	rawData, err := mgr.Get(objDataset)
	if err != nil {
		return nil, false, err
	}
	data, err := unmarshalDataset[T](rawData)
	if err != nil {
		return nil, false, err
	}
	if len(data) != meta.N || g.NumVertices() != meta.N {
		return nil, false, fmt.Errorf("dnnd: store inconsistent: meta N=%d, dataset %d, graph %d",
			meta.N, len(data), g.NumVertices())
	}
	ix, err := NewIndex(g, data, meta.Metric, meta.K)
	if err != nil {
		return nil, false, err
	}
	return ix, meta.Refined, nil
}

// StoreElem reports the element type ("float32", "uint8", "uint32")
// of a persisted index, so command-line tools can dispatch to the
// right Load instantiation.
func StoreElem(dir string) (string, error) {
	mgr, err := metall.Open(dir)
	if err != nil {
		return "", err
	}
	defer mgr.Close()
	rawMeta, err := mgr.Get(objMeta)
	if err != nil {
		return "", err
	}
	var meta storeMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		return "", fmt.Errorf("dnnd: bad store metadata: %w", err)
	}
	return meta.Elem, nil
}

// Refine applies the Section 4.5 graph optimization to a stored index
// in place: merge reverse edges and prune degrees to k*m. It mirrors
// the paper's separate graph-optimization executable.
func Refine[T Scalar](dir string, m float64) error {
	ix, refined, err := LoadWithMeta[T](dir)
	if err != nil {
		return err
	}
	if refined {
		return fmt.Errorf("dnnd: store %s is already refined", dir)
	}
	ix.graph.Optimize(ix.k, m)
	return Save(dir, ix, true)
}

// StoreState describes a mutable (v2) store's manifest, as returned by
// LoadMutable. A v1 store reads as generation 0 with no pending
// mutations.
type StoreState struct {
	Version int
	Gen     int64 // published-snapshot generation, bumped by every SaveMutable
	K       int
	Metric  MetricKind
	BaseN   int // vertices the persisted graph covers
	DeltaN  int // pending delta-log vectors (not yet in the graph)
	TombN   int // tombstoned IDs
	Refined bool
}

// SaveMutable persists a mutable index as a v2 MVCC snapshot: the base
// index (graph + dataset, BaseN vertices), the pending delta log
// (vectors ingested but not yet refined into a graph), and the
// tombstone set, under generation gen. The commit is atomic through
// metall's temp+rename manifest machinery — a crash mid-save leaves
// the previous generation intact.
func SaveMutable[T Scalar](dir string, ix *Index[T], refined bool, pending [][]T, tombs *Tombstones, gen int64) error {
	mgr, err := metall.OpenOrCreate(dir)
	if err != nil {
		return err
	}
	n := len(ix.data) + len(pending)
	// Freeze the tombstone set once up front: callers (the server's
	// Publish hook) pass the live set of a published snapshot, which
	// concurrent deletes keep mutating. Deriving TombN and the persisted
	// bitset from separate reads of the live set can disagree, producing
	// a store LoadMutable rejects as inconsistent.
	frozen := tombs.CloneGrow(n)
	meta := storeMeta{
		Version: storeVersionMutable,
		K:       ix.k,
		Metric:  ix.kind,
		Elem:    elemName[T](),
		N:       n,
		Refined: refined,
		Gen:     gen,
		BaseN:   len(ix.data),
		DeltaN:  len(pending),
		TombN:   frozen.Count(),
	}
	rawMeta, err := json.Marshal(&meta)
	if err != nil {
		return err
	}
	if err := mgr.Put(objMeta, rawMeta); err != nil {
		return err
	}
	if err := mgr.Put(objGraph, ix.graph.Marshal()); err != nil {
		return err
	}
	if err := mgr.Put(objDataset, marshalDataset(ix.data)); err != nil {
		return err
	}
	if err := mgr.Put(objDelta, marshalDataset(pending)); err != nil {
		return err
	}
	if err := mgr.Put(objTombs, frozen.Marshal()); err != nil {
		return err
	}
	return mgr.Close()
}

// LoadMutable reattaches to a store for mutation: the base index, the
// pending delta vectors, the tombstone set (grown to cover base+delta),
// and the manifest state. It reads both formats — a frozen v1 store
// comes back as generation 0 with an empty delta and no tombstones, so
// any store Save ever wrote can be opened for online mutation.
func LoadMutable[T Scalar](dir string) (*Index[T], [][]T, *Tombstones, StoreState, error) {
	var st StoreState
	mgr, err := metall.Open(dir)
	if err != nil {
		return nil, nil, nil, st, err
	}
	defer mgr.Close()

	rawMeta, err := mgr.Get(objMeta)
	if err != nil {
		return nil, nil, nil, st, err
	}
	var meta storeMeta
	if err := json.Unmarshal(rawMeta, &meta); err != nil {
		return nil, nil, nil, st, fmt.Errorf("dnnd: bad store metadata: %w", err)
	}
	if meta.Version != storeVersion && meta.Version != storeVersionMutable {
		return nil, nil, nil, st, &MismatchError{
			Dir: dir, Field: "version",
			Got:  fmt.Sprintf("%d", meta.Version),
			Want: fmt.Sprintf("%d|%d", storeVersion, storeVersionMutable),
		}
	}
	if meta.Elem != elemName[T]() {
		return nil, nil, nil, st, &MismatchError{
			Dir: dir, Field: "elem", Got: meta.Elem, Want: elemName[T](),
		}
	}
	if meta.Version == storeVersion {
		meta.BaseN = meta.N
	}

	rawGraph, err := mgr.Get(objGraph)
	if err != nil {
		return nil, nil, nil, st, err
	}
	g, err := knng.Unmarshal(rawGraph)
	if err != nil {
		return nil, nil, nil, st, err
	}
	rawData, err := mgr.Get(objDataset)
	if err != nil {
		return nil, nil, nil, st, err
	}
	data, err := unmarshalDataset[T](rawData)
	if err != nil {
		return nil, nil, nil, st, err
	}
	if len(data) != meta.BaseN || g.NumVertices() != meta.BaseN {
		return nil, nil, nil, st, fmt.Errorf("dnnd: store inconsistent: meta BaseN=%d, dataset %d, graph %d",
			meta.BaseN, len(data), g.NumVertices())
	}

	var pending [][]T
	tombs := NewTombstones(meta.BaseN)
	if meta.Version == storeVersionMutable {
		rawDelta, err := mgr.Get(objDelta)
		if err != nil {
			return nil, nil, nil, st, err
		}
		if pending, err = unmarshalDataset[T](rawDelta); err != nil {
			return nil, nil, nil, st, err
		}
		if len(pending) != meta.DeltaN {
			return nil, nil, nil, st, fmt.Errorf("dnnd: store inconsistent: meta DeltaN=%d, delta log %d",
				meta.DeltaN, len(pending))
		}
		rawTombs, err := mgr.Get(objTombs)
		if err != nil {
			return nil, nil, nil, st, err
		}
		if tombs, err = knng.UnmarshalTombSet(rawTombs); err != nil {
			return nil, nil, nil, st, err
		}
		tombs = tombs.CloneGrow(meta.BaseN + meta.DeltaN)
		if tombs.Count() != meta.TombN {
			return nil, nil, nil, st, fmt.Errorf("dnnd: store inconsistent: meta TombN=%d, tombstone set %d",
				meta.TombN, tombs.Count())
		}
	}

	ix, err := NewIndex(g, data, meta.Metric, meta.K)
	if err != nil {
		return nil, nil, nil, st, err
	}
	st = StoreState{
		Version: meta.Version,
		Gen:     meta.Gen,
		K:       meta.K,
		Metric:  meta.Metric,
		BaseN:   meta.BaseN,
		DeltaN:  meta.DeltaN,
		TombN:   tombs.Count(),
		Refined: meta.Refined,
	}
	return ix, pending, tombs, st, nil
}

// Compact folds a mutable store's pending mutations into its base:
// delta vectors join the dataset, tombstoned points are physically
// removed (surviving IDs are compacted dense — the returned mapping
// translates old IDs to new, knng.InvalidID for removed points; it is
// nil when there were no tombstones and IDs are unchanged), and a
// warm-started refinement repairs the graph. The result is written
// back as a clean snapshot at the next generation. opt.K and
// opt.Metric default to the store's own values.
func Compact[T Scalar](dir string, opt BuildOptions) ([]ID, error) {
	ix, pending, tombs, st, err := LoadMutable[T](dir)
	if err != nil {
		return nil, err
	}
	if len(pending) == 0 && tombs.Count() == 0 {
		return nil, fmt.Errorf("dnnd: store %s has nothing to compact", dir)
	}
	if opt.K == 0 {
		opt.K = st.K
	}
	if opt.Metric == "" {
		opt.Metric = st.Metric
	}

	combined := make([][]T, 0, len(ix.data)+len(pending))
	combined = append(combined, ix.data...)
	combined = append(combined, pending...)
	// Grow the prior graph over the delta range with empty lists: the
	// warm-started build tops those vertices up exactly like Extend.
	prior := knng.NewGraph(len(combined))
	copy(prior.Neighbors, ix.graph.Neighbors)

	var (
		kept    [][]T
		res     *BuildResult
		mapping []ID
	)
	if dead := tombs.Snapshot(); len(dead) > 0 {
		kept, res, mapping, err = Remove(combined, dead, prior, opt)
	} else {
		kept = combined
		res, err = buildWithPrior(combined, prior, opt)
	}
	if err != nil {
		return nil, err
	}
	newIx, err := NewIndex(res.Graph, kept, opt.Metric, opt.K)
	if err != nil {
		return nil, err
	}
	if err := SaveMutable(dir, newIx, !opt.SkipRefine, nil, nil, st.Gen+1); err != nil {
		return nil, err
	}
	return mapping, nil
}

const datasetMagic uint32 = 0x54534456 // "VDST"

func marshalDataset[T Scalar](data [][]T) []byte {
	size := 8
	for _, v := range data {
		size += wire.VectorBytes[T](len(v))
	}
	w := wire.NewWriter(size)
	w.Uint32(datasetMagic)
	w.Uint32(uint32(len(data)))
	for _, v := range data {
		putVec(w, v)
	}
	return w.Bytes()
}

func unmarshalDataset[T Scalar](p []byte) ([][]T, error) {
	r := wire.NewReader(p)
	if r.Uint32() != datasetMagic {
		return nil, fmt.Errorf("dnnd: bad dataset blob")
	}
	n := int(r.Uint32())
	if r.Err() != nil || n > wire.MaxVectorLen {
		return nil, fmt.Errorf("dnnd: bad dataset header")
	}
	data := make([][]T, n)
	for i := range data {
		data[i] = getVec[T](r)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("dnnd: corrupt dataset blob: %w", err)
	}
	return data, nil
}

// putVec/getVec adapt wire's generic vector codec to the root Scalar
// constraint (the constraints are structurally identical).
func putVec[T Scalar](w *wire.Writer, v []T) {
	switch s := any(v).(type) {
	case []float32:
		w.Float32s(s)
	case []uint8:
		w.Uint8s(s)
	case []uint32:
		w.Uint32s(s)
	}
}

func getVec[T Scalar](r *wire.Reader) []T {
	var z T
	switch any(z).(type) {
	case float32:
		return any(r.Float32s()).([]T)
	case uint8:
		return any(r.Uint8s()).([]T)
	default:
		return any(r.Uint32s()).([]T)
	}
}
