package dnnd

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"dnnd/internal/brute"
	"dnnd/internal/knng"
	"dnnd/internal/metric"
)

func randRows[T Scalar](rng *rand.Rand, n, dim int) [][]T {
	var z T
	out := make([][]T, n)
	for i := range out {
		v := make([]T, dim)
		switch any(z).(type) {
		case float32:
			for j := range v {
				v[j] = T(any(float32(rng.Float32())).(T))
			}
		case uint8:
			for j := range v {
				v[j] = T(any(uint8(rng.Intn(256))).(T))
			}
		default:
			// Sorted distinct sets for Jaccard.
			x := uint32(rng.Intn(3))
			for j := range v {
				v[j] = T(any(x).(T))
				x += uint32(1 + rng.Intn(5))
			}
		}
		out[i] = v
	}
	return out
}

// mutableRoundTrip persists a v2 manifest (base + delta + tombstones)
// and checks every component and manifest field survives reload.
func mutableRoundTrip[T Scalar](t *testing.T, kind MetricKind) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	const n, dim, k = 40, 6, 4
	data := randRows[T](rng, n, dim)
	delta := randRows[T](rng, 7, dim)
	dist, err := metricFor[T](kind)
	if err != nil {
		t.Fatal(err)
	}
	g := brute.KNNGraph(data, k, dist, 0)
	ix, err := NewIndex(g, data, kind, k)
	if err != nil {
		t.Fatal(err)
	}
	tombs := NewTombstones(n + len(delta))
	tombs.Kill(3)
	tombs.Kill(ID(n + 2)) // a delta point deleted before refinement

	dir := filepath.Join(t.TempDir(), "store")
	if err := SaveMutable(dir, ix, true, delta, tombs, 5); err != nil {
		t.Fatal(err)
	}

	lx, pending, ltombs, st, err := LoadMutable[T](dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != storeVersionMutable || st.Gen != 5 || st.BaseN != n ||
		st.DeltaN != len(delta) || st.TombN != 2 || !st.Refined || st.K != k || st.Metric != kind {
		t.Fatalf("manifest state: %+v", st)
	}
	if lx.Len() != n || len(pending) != len(delta) {
		t.Fatalf("base %d pending %d", lx.Len(), len(pending))
	}
	for i := range delta {
		for j := range delta[i] {
			if pending[i][j] != delta[i][j] {
				t.Fatalf("delta[%d][%d] mismatch", i, j)
			}
		}
	}
	if !ltombs.Dead(3) || !ltombs.Dead(ID(n+2)) || ltombs.Dead(4) || ltombs.Len() != n+len(delta) {
		t.Fatalf("tombstones: len=%d count=%d", ltombs.Len(), ltombs.Count())
	}
	if !lx.Graph().Equal(g) {
		t.Fatal("graph changed across mutable round trip")
	}
}

func TestMutableStoreRoundTripAllElems(t *testing.T) {
	t.Run("float32", func(t *testing.T) { mutableRoundTrip[float32](t, metric.SquaredL2) })
	t.Run("uint8", func(t *testing.T) { mutableRoundTrip[uint8](t, metric.L2) })
	t.Run("uint32", func(t *testing.T) { mutableRoundTrip[uint32](t, metric.Jaccard) })
}

// TestV1StoreOpensForMutation: a frozen store written by Save reads
// back through LoadMutable as generation 0 with no pending mutations —
// old single-snapshot stores stay fully usable.
func TestV1StoreOpensForMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randRows[float32](rng, 30, 4)
	g := brute.KNNGraph(data, 3, metric.SquaredL2Float32, 0)
	ix, err := NewIndex(g, data, metric.SquaredL2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := Save(dir, ix, false); err != nil {
		t.Fatal(err)
	}
	lx, pending, tombs, st, err := LoadMutable[float32](dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != storeVersion || st.Gen != 0 || st.BaseN != 30 || st.DeltaN != 0 || st.TombN != 0 {
		t.Fatalf("v1 manifest state: %+v", st)
	}
	if len(pending) != 0 || tombs.Count() != 0 || tombs.Len() != 30 {
		t.Fatalf("v1 pending=%d tombs=%d/%d", len(pending), tombs.Count(), tombs.Len())
	}
	if !lx.Graph().Equal(g) {
		t.Fatal("graph changed")
	}
}

// TestFrozenLoadRejectsDirtyMutableStore: LoadWithMeta must refuse a
// v2 store with pending mutations (a frozen reader would resurface
// deleted points) but accept a clean one.
func TestFrozenLoadRejectsDirtyMutableStore(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randRows[float32](rng, 30, 4)
	g := brute.KNNGraph(data, 3, metric.SquaredL2Float32, 0)
	ix, err := NewIndex(g, data, metric.SquaredL2, 3)
	if err != nil {
		t.Fatal(err)
	}

	clean := filepath.Join(t.TempDir(), "clean")
	if err := SaveMutable(clean, ix, false, nil, nil, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadWithMeta[float32](clean); err != nil {
		t.Fatalf("clean v2 store rejected by frozen load: %v", err)
	}

	dirty := filepath.Join(t.TempDir(), "dirty")
	tombs := NewTombstones(30)
	tombs.Kill(1)
	if err := SaveMutable(dirty, ix, false, nil, tombs, 2); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadWithMeta[float32](dirty)
	if err == nil || !strings.Contains(err.Error(), "pending mutations") {
		t.Fatalf("dirty v2 store accepted by frozen load: %v", err)
	}
}

// TestMutableStoreSurvivesManyGenerations: an online server commits
// every published snapshot back to the same store directory, so the
// open→put→close cycle repeats once per generation. Each generation
// must stay fully readable — this is the store-level regression test
// for the metall sequence-counter bug, where the third commit cycle
// destroyed the live object files.
func TestMutableStoreSurvivesManyGenerations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, dim, k = 40, 6, 4
	dir := filepath.Join(t.TempDir(), "store")
	for gen := int64(1); gen <= 5; gen++ {
		data := randRows[float32](rng, n+int(gen), dim)
		g := brute.KNNGraph(data, k, metric.SquaredL2Float32, 0)
		ix, err := NewIndex(g, data, metric.SquaredL2, k)
		if err != nil {
			t.Fatal(err)
		}
		tombs := NewTombstones(len(data))
		tombs.Kill(ID(gen))
		if err := SaveMutable(dir, ix, true, nil, tombs, gen); err != nil {
			t.Fatalf("gen %d: save: %v", gen, err)
		}
		lx, pending, ltombs, st, err := LoadMutable[float32](dir)
		if err != nil {
			t.Fatalf("gen %d: load: %v", gen, err)
		}
		if st.Gen != gen || lx.Len() != len(data) || len(pending) != 0 {
			t.Fatalf("gen %d: state %+v, n=%d pending=%d", gen, st, lx.Len(), len(pending))
		}
		if !ltombs.Dead(ID(gen)) || ltombs.Count() != 1 {
			t.Fatalf("gen %d: tombstones count=%d", gen, ltombs.Count())
		}
		if !lx.Graph().Equal(g) {
			t.Fatalf("gen %d: graph changed across commit", gen)
		}
	}
}

// TestCompactFoldsDeltaAndTombstones: compaction folds the delta into
// the base, removes dead points, bumps the generation, and leaves a
// clean store a frozen loader accepts.
func TestCompactFoldsDeltaAndTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n, dim, k = 120, 6, 6
	data := randRows[float32](rng, n, dim)
	delta := randRows[float32](rng, 12, dim)
	g := brute.KNNGraph(data, k, metric.SquaredL2Float32, 0)
	ix, err := NewIndex(g, data, metric.SquaredL2, k)
	if err != nil {
		t.Fatal(err)
	}
	tombs := NewTombstones(n + len(delta))
	tombs.Kill(10)
	tombs.Kill(11)

	dir := filepath.Join(t.TempDir(), "store")
	if err := SaveMutable(dir, ix, false, delta, tombs, 3); err != nil {
		t.Fatal(err)
	}
	mapping, err := Compact[float32](dir, BuildOptions{Metric: metric.SquaredL2, Ranks: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != n+len(delta) {
		t.Fatalf("mapping covers %d IDs, want %d", len(mapping), n+len(delta))
	}
	if mapping[10] != knng.InvalidID || mapping[11] != knng.InvalidID || mapping[0] == knng.InvalidID {
		t.Fatalf("mapping: %v %v %v", mapping[10], mapping[11], mapping[0])
	}

	lx, pending, ltombs, st, err := LoadMutable[float32](dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gen != 4 || st.DeltaN != 0 || st.TombN != 0 {
		t.Fatalf("post-compact state: %+v", st)
	}
	if lx.Len() != n+len(delta)-2 || len(pending) != 0 || ltombs.Count() != 0 {
		t.Fatalf("post-compact: n=%d pending=%d tombs=%d", lx.Len(), len(pending), ltombs.Count())
	}
	// Frozen loaders accept the compacted store again.
	if _, _, err := LoadWithMeta[float32](dir); err != nil {
		t.Fatalf("frozen load of compacted store: %v", err)
	}
	// Compacting a clean store is a typed no-op error.
	if _, err := Compact[float32](dir, BuildOptions{Metric: metric.SquaredL2, Ranks: 1}); err == nil {
		t.Fatal("compact of clean store did not report nothing-to-do")
	}
}

// TestSaveMutableUnderConcurrentDeletes: SaveMutable freezes the
// tombstone set once and derives both the persisted TombN and the
// bitset blob from that single copy, so a save racing concurrent Kill
// calls (the server's persist-on-publish path, where deletes keep
// landing on the published snapshot's live set) always writes a
// self-consistent store that LoadMutable reopens.
func TestSaveMutableUnderConcurrentDeletes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, dim, k = 2000, 4, 3
	const gens, killsPerGen = 15, 100
	data := randRows[float32](rng, n, dim)
	g := brute.KNNGraph(data, k, metric.SquaredL2Float32, 0)
	ix, err := NewIndex(g, data, metric.SquaredL2, k)
	if err != nil {
		t.Fatal(err)
	}
	tombs := NewTombstones(n)

	dir := filepath.Join(t.TempDir(), "store")
	for gen := int64(1); gen <= gens; gen++ {
		// Kill a fresh batch of IDs concurrently with the save; each
		// iteration races real mutations against the snapshot freeze.
		start := make(chan struct{})
		done := make(chan struct{})
		base := int(gen-1) * killsPerGen
		go func() {
			defer close(done)
			<-start
			for i := 0; i < killsPerGen; i++ {
				tombs.Kill(ID(base + i))
			}
		}()
		close(start)
		if err := SaveMutable(dir, ix, true, nil, tombs, gen); err != nil {
			t.Fatalf("gen %d: save: %v", gen, err)
		}
		<-done
		// The persisted count and bitset must agree no matter how the
		// race landed — LoadMutable rejects the store otherwise.
		if _, _, ltombs, st, err := LoadMutable[float32](dir); err != nil {
			t.Fatalf("gen %d: load: %v", gen, err)
		} else if st.Gen != gen || ltombs.Count() != st.TombN {
			t.Fatalf("gen %d: state %+v, tombs=%d", gen, st, ltombs.Count())
		}
	}
	if tombs.Count() != gens*killsPerGen {
		t.Fatalf("killer lost kills: %d", tombs.Count())
	}
}
