package dnnd

import (
	"encoding/json"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"dnnd/internal/brute"
	"dnnd/internal/metall"
	"dnnd/internal/metric"
)

// saveLoadRoundTrip persists a small brute-force index and reloads it,
// checking the graph, the dataset, and every storeMeta field survive.
func saveLoadRoundTrip[T Scalar](t *testing.T, data [][]T, kind MetricKind, refined bool) {
	t.Helper()
	const k = 4
	dist, err := metricFor[T](kind)
	if err != nil {
		t.Fatal(err)
	}
	g := brute.KNNGraph(data, k, dist, 0)
	ix, err := NewIndex(g, data, kind, k)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := Save(dir, ix, refined); err != nil {
		t.Fatal(err)
	}

	if elem, err := StoreElem(dir); err != nil || elem != elemName[T]() {
		t.Fatalf("StoreElem = %q, %v; want %q", elem, err, elemName[T]())
	}
	lx, gotRefined, err := LoadWithMeta[T](dir)
	if err != nil {
		t.Fatal(err)
	}
	if gotRefined != refined {
		t.Fatalf("Refined round-trip: got %v, want %v", gotRefined, refined)
	}
	if lx.K() != k || lx.Metric() != kind || lx.Len() != len(data) {
		t.Fatalf("meta round-trip: k=%d metric=%q n=%d", lx.K(), lx.Metric(), lx.Len())
	}
	for i, row := range lx.Data() {
		if len(row) != len(data[i]) {
			t.Fatalf("dataset row %d: %d elems, want %d", i, len(row), len(data[i]))
		}
		for j := range row {
			if row[j] != data[i][j] {
				t.Fatalf("dataset[%d][%d] = %v, want %v", i, j, row[j], data[i][j])
			}
		}
	}
	for v := range data {
		got, want := lx.Graph().Neighbors[v], g.Neighbors[v]
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d neighbors, want %d", v, len(got), len(want))
		}
		for j := range want {
			if got[j].ID != want[j].ID || got[j].Dist != want[j].Dist {
				t.Fatalf("vertex %d neighbor %d: got %+v, want %+v", v, j, got[j], want[j])
			}
		}
	}
}

func TestStoreRoundTripAllElems(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, dim = 40, 6

	f32 := make([][]float32, n)
	for i := range f32 {
		v := make([]float32, dim)
		for j := range v {
			v[j] = rng.Float32()
		}
		f32[i] = v
	}
	u8 := make([][]uint8, n)
	for i := range u8 {
		v := make([]uint8, dim)
		for j := range v {
			v[j] = uint8(rng.Intn(256))
		}
		u8[i] = v
	}
	// uint32 rows are sorted distinct sets (Jaccard data).
	u32 := make([][]uint32, n)
	for i := range u32 {
		v := make([]uint32, 0, dim)
		for x := uint32(0); x < 4*dim; x++ {
			if rng.Intn(4) == 0 && len(v) < dim {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			v = append(v, uint32(i))
		}
		u32[i] = v
	}

	t.Run("float32", func(t *testing.T) { saveLoadRoundTrip(t, f32, metric.SquaredL2, false) })
	t.Run("float32Refined", func(t *testing.T) { saveLoadRoundTrip(t, f32, metric.SquaredL2, true) })
	t.Run("uint8", func(t *testing.T) { saveLoadRoundTrip(t, u8, metric.L2, true) })
	t.Run("uint32", func(t *testing.T) { saveLoadRoundTrip(t, u32, metric.Jaccard, false) })
}

// TestStoreElemMismatchTyped: loading with the wrong element
// instantiation surfaces a *MismatchError a server can branch on, not
// an opaque formatted error.
func TestStoreElemMismatchTyped(t *testing.T) {
	data := [][]float32{{0, 1}, {1, 0}, {1, 1}, {0, 0}, {2, 2}}
	dist, err := metricFor[float32](metric.SquaredL2)
	if err != nil {
		t.Fatal(err)
	}
	g := brute.KNNGraph(data, 2, dist, 0)
	ix, err := NewIndex(g, data, metric.SquaredL2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := Save(dir, ix, false); err != nil {
		t.Fatal(err)
	}

	_, _, err = LoadWithMeta[uint8](dir)
	var mm *MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("elem mismatch returned %T (%v), want *MismatchError", err, err)
	}
	if mm.Field != "elem" || mm.Got != "float32" || mm.Want != "uint8" || mm.Dir != dir {
		t.Fatalf("mismatch detail: %+v", mm)
	}
	if mm.Error() == "" {
		t.Fatalf("empty error text")
	}
}

// TestStoreVersionMismatchTyped: a datastore from a future format
// version is refused with a typed version mismatch instead of being
// misread.
func TestStoreVersionMismatchTyped(t *testing.T) {
	data := [][]float32{{0, 1}, {1, 0}, {1, 1}, {0, 0}, {2, 2}}
	dist, err := metricFor[float32](metric.SquaredL2)
	if err != nil {
		t.Fatal(err)
	}
	g := brute.KNNGraph(data, 2, dist, 0)
	ix, err := NewIndex(g, data, metric.SquaredL2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := Save(dir, ix, false); err != nil {
		t.Fatal(err)
	}

	// Tamper: bump the stored version.
	mgr, err := metall.OpenOrCreate(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := mgr.Get(objMeta)
	if err != nil {
		t.Fatal(err)
	}
	var meta storeMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	meta.Version = storeVersionMutable + 1
	raw, err = json.Marshal(&meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Put(objMeta, raw); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, err = LoadWithMeta[float32](dir)
	var mm *MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("version mismatch returned %T (%v), want *MismatchError", err, err)
	}
	if mm.Field != "version" || mm.Got != "3" || mm.Want != "1|2" {
		t.Fatalf("mismatch detail: %+v", mm)
	}
}
